"""Parallel, cached, observable execution of experiment specs.

The :class:`Executor` fans a :class:`~repro.runner.spec.SweepSpec` out over
worker processes -- one short-lived process per cell, fed the cell's spec
as plain JSON data and returning the serialised
:class:`~repro.sim.engine.SimulationReport` over a pipe.  Because every
cell is a pure function of its spec (the workload generator is reseeded
from the spec inside the worker), the parallel path is bit-identical to
the sequential in-process fallback (``workers=0``): same specs in, same
reports out, in cell order, regardless of completion order.

Robustness knobs:

* ``timeout`` -- per-attempt wall-clock limit; a worker that overruns is
  terminated and the cell retried (parallel mode only -- an in-process
  task cannot be interrupted);
* ``retries`` -- how many *additional* attempts a cell gets after a
  worker crash, raised exception, or timeout, before the whole run fails
  with :class:`~repro.errors.ExecutionError`;
* ``cache`` -- a :class:`~repro.runner.cache.ResultCache`; hits skip
  execution entirely and are journaled as ``task_cached``;
* ``journal`` -- a :class:`~repro.runner.journal.RunJournal` receiving
  start/finish/retry/failure events with wall time and traffic counters.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.runner.cache import ResultCache
from repro.runner.journal import RunJournal
from repro.runner.spec import ExperimentSpec, SweepSpec
from repro.sim.engine import SimulationReport, run_trace
from repro.sim.system import System

#: How long the scheduler sleeps in :func:`multiprocessing.connection.wait`
#: between bookkeeping passes (timeout checks, launches).
_POLL_SECONDS = 0.05


def execute_spec(spec: ExperimentSpec) -> SimulationReport:
    """Run one cell in-process: build the machine, the trace, measure.

    This single function is the whole task body -- the sequential path
    calls it directly and the worker processes call it on a deserialised
    copy of the spec, which is what makes the two paths bit-identical.
    """
    from repro.analysis.compare import default_factories

    factories = default_factories()
    if spec.protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {spec.protocol!r}; "
            f"expected one of {sorted(factories)}"
        )
    protocol = factories[spec.protocol](System(spec.config))
    references = spec.workload.build().references
    if spec.warmup:
        run_trace(
            protocol,
            references[: spec.warmup],
            verify=False,
            check_invariants_every=0,
        )
    return run_trace(
        protocol,
        references[spec.warmup :],
        verify=spec.verify,
        check_invariants_every=spec.check_invariants_every,
    )


def _worker_main(spec_dict: dict, task_fn, conn) -> None:
    """Worker-process entry: run one cell, ship the outcome, exit."""
    try:
        spec = ExperimentSpec.from_dict(spec_dict)
        fn = execute_spec if task_fn is None else task_fn
        report = fn(spec)
        conn.send(("ok", report.to_dict()))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # parent gone; nothing left to report to
            pass
    finally:
        conn.close()


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served) cell.

    ``attempts`` counts executions actually performed (0 for a cache
    hit); ``wall_time`` is the successful attempt's duration in seconds.
    """

    spec: ExperimentSpec
    report: SimulationReport
    cached: bool
    attempts: int
    wall_time: float


class _Running:
    """Bookkeeping for one in-flight worker process."""

    def __init__(self, index, spec, attempt, process, conn, started):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started


class Executor:
    """Runs experiment specs, optionally in parallel, through the cache.

    ``workers=0`` (the default) executes sequentially in-process --
    useful under debuggers, in environments without ``multiprocessing``
    head-room, and as the reference the parallel path is checked against.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        timeout: float | None = None,
        retries: int = 1,
        cache: ResultCache | None = None,
        journal: RunJournal | None = None,
        task_fn: Callable[[ExperimentSpec], SimulationReport] | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {timeout}"
            )
        if retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {retries}"
            )
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.cache = cache
        self.journal = journal if journal is not None else RunJournal()
        # Testing hook: replaces execute_spec as the task body.  Under the
        # fork start method any callable works; under spawn it must be an
        # importable module-level function.
        self._task_fn = task_fn

    # ------------------------------------------------------------------

    def run(
        self, sweep: SweepSpec | Sequence[ExperimentSpec]
    ) -> list[TaskResult]:
        """Execute every cell; results come back in cell order.

        Cache hits never reach a worker.  A cell that exhausts
        ``retries`` aborts the run with
        :class:`~repro.errors.ExecutionError` (remaining workers are
        terminated first).
        """
        if isinstance(sweep, SweepSpec):
            name, cells = sweep.name, list(sweep.cells)
        else:
            name, cells = "ad-hoc", list(sweep)
        started = time.perf_counter()
        self.journal.sweep_start(name, len(cells), self.workers)

        results: list[TaskResult | None] = [None] * len(cells)
        pending: list[tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(cells):
            report = self.cache.get(spec) if self.cache else None
            if report is not None:
                self.journal.task_cached(spec)
                results[index] = TaskResult(
                    spec=spec,
                    report=report,
                    cached=True,
                    attempts=0,
                    wall_time=0.0,
                )
            else:
                pending.append((index, spec))

        if self.workers == 0:
            self._run_sequential(pending, results)
        else:
            self._run_parallel(pending, results)

        self.journal.sweep_finish(name, time.perf_counter() - started)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Sequential fallback
    # ------------------------------------------------------------------

    def _run_sequential(self, pending, results) -> None:
        fn = execute_spec if self._task_fn is None else self._task_fn
        for index, spec in pending:
            attempt = 0
            while True:
                attempt += 1
                self.journal.task_start(spec, attempt)
                t0 = time.perf_counter()
                try:
                    report = fn(spec)
                except Exception:
                    error = traceback.format_exc()
                    if attempt > self.retries:
                        self._fail(spec, attempt, error)
                    self.journal.task_retry(spec, attempt, error)
                    continue
                self._finish(
                    results, index, spec, attempt,
                    time.perf_counter() - t0, report,
                )
                break

    # ------------------------------------------------------------------
    # Parallel fan-out
    # ------------------------------------------------------------------

    def _run_parallel(self, pending, results) -> None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        queue = list(pending)  # (index, spec); retries carry attempt no.
        retry_queue: list[tuple[int, ExperimentSpec, int]] = []
        running: list[_Running] = []
        try:
            while queue or retry_queue or running:
                while (queue or retry_queue) and len(running) < self.workers:
                    if retry_queue:
                        index, spec, attempt = retry_queue.pop(0)
                    else:
                        index, spec = queue.pop(0)
                        attempt = 1
                    running.append(
                        self._launch(context, index, spec, attempt)
                    )
                self._reap(running, retry_queue, results)
        except BaseException:
            self._terminate_all(running)
            raise

    def _launch(self, context, index, spec, attempt) -> _Running:
        self.journal.task_start(spec, attempt)
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(spec.to_dict(), self._task_fn, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only the reading end
        return _Running(
            index, spec, attempt, process, parent_conn,
            time.perf_counter(),
        )

    def _reap(self, running, retry_queue, results) -> None:
        """One scheduler pass: collect finished, crashed and overrun."""
        if running:
            connection_wait(
                [task.conn for task in running], timeout=_POLL_SECONDS
            )
        now = time.perf_counter()
        for task in list(running):
            outcome = None  # ("ok", report) | ("error", text) | None
            if task.conn.poll():
                try:
                    outcome = task.conn.recv()
                except EOFError:  # died between send and close
                    outcome = ("error", "worker closed the pipe early")
            elif self.timeout is not None and (
                now - task.started > self.timeout
            ):
                outcome = (
                    "error",
                    f"timed out after {self.timeout:g} s",
                )
            elif not task.process.is_alive():
                outcome = (
                    "error",
                    f"worker exited with code "
                    f"{task.process.exitcode} before reporting",
                )
            if outcome is None:
                continue

            running.remove(task)
            self._retire(task)
            status, payload = outcome
            if status == "ok":
                self._finish(
                    results, task.index, task.spec, task.attempt,
                    now - task.started,
                    SimulationReport.from_dict(payload),
                )
            else:
                if task.attempt > self.retries:
                    self._terminate_all(running)
                    self._fail(task.spec, task.attempt, payload)
                self.journal.task_retry(task.spec, task.attempt, payload)
                retry_queue.append(
                    (task.index, task.spec, task.attempt + 1)
                )

    @staticmethod
    def _retire(task: _Running) -> None:
        task.conn.close()
        if task.process.is_alive():
            task.process.terminate()
        task.process.join()

    @staticmethod
    def _terminate_all(running: list[_Running]) -> None:
        for task in running:
            Executor._retire(task)
        running.clear()

    # ------------------------------------------------------------------

    def _finish(
        self, results, index, spec, attempt, wall_time, report
    ) -> None:
        self.journal.task_finish(spec, attempt, wall_time, report)
        if self.cache is not None:
            self.cache.put(spec, report)
        results[index] = TaskResult(
            spec=spec,
            report=report,
            cached=False,
            attempts=attempt,
            wall_time=wall_time,
        )

    def _fail(self, spec, attempts, error) -> None:
        self.journal.task_failed(spec, attempts, error)
        raise ExecutionError(
            f"task {spec.spec_hash[:12]} ({spec.describe()}) failed "
            f"after {attempts} attempt(s):\n{error}"
        )
