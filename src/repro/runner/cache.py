"""Content-addressed on-disk store of experiment results.

Each completed :class:`~repro.runner.spec.ExperimentSpec` lands at
``<root>/<hh>/<hash>.json`` (``hh`` = first two hex digits of the spec
hash, to keep directories small) as one JSON document holding both the
full spec and the serialised :class:`~repro.sim.engine.SimulationReport`.
Because the path *is* the content hash, re-running a sweep only executes
cells whose spec changed -- everything else is a file read.

Writes are atomic (temp file + ``os.replace``) so a killed run never
leaves a half-written entry for the next run to trip over, and
:meth:`ResultCache.get` re-checks the stored spec against the requested
one, so a truncated or foreign file degrades to a miss, never a wrong
result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runner.spec import ExperimentSpec
from repro.sim.engine import SimulationReport


class ResultCache:
    """Spec-hash -> :class:`~repro.sim.engine.SimulationReport` store."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, spec_hash: str) -> Path:
        return self.root / spec_hash[:2] / f"{spec_hash}.json"

    def get(self, spec: ExperimentSpec) -> SimulationReport | None:
        """The cached report for ``spec``, or ``None`` on a miss.

        Unreadable or mismatched entries (truncated writes, a stale
        format, a hash collision) are treated as misses.
        """
        path = self._path(spec.spec_hash)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return None
        if data.get("spec") != spec.to_dict():
            return None
        try:
            return SimulationReport.from_dict(data["report"])
        except (KeyError, TypeError):
            return None

    def put(self, spec: ExperimentSpec, report: SimulationReport) -> Path:
        """Store ``report`` under ``spec``'s content hash, atomically."""
        spec_hash = spec.spec_hash
        path = self._path(spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
            "report": report.to_dict(),
        }
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True, indent=1)
            stream.write("\n")
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.get(spec) is not None

    def __len__(self) -> int:
        return sum(
            1 for _ in self.root.glob("??/*.json")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink()
            removed += 1
        return removed
