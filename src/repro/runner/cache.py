"""Content-addressed stores of experiment results: disk, and a hot tier.

Each completed :class:`~repro.runner.spec.ExperimentSpec` lands at
``<root>/<hh>/<hash>.json`` (``hh`` = first two hex digits of the spec
hash, to keep directories small) as one JSON document holding both the
full spec and the serialised :class:`~repro.sim.engine.SimulationReport`.
Because the path *is* the content hash, re-running a sweep only executes
cells whose spec changed -- everything else is a file read.

Writes are atomic (temp file + ``os.replace``) so a killed run never
leaves a half-written entry for the next run to trip over, and
:meth:`ResultCache.get` re-checks the stored spec against the requested
one, so a truncated or foreign file degrades to a miss, never a wrong
result.

The disk store optionally enforces an **expiry policy** so long-running
fleets do not fill the disk: ``max_bytes`` caps the total size of the
store (enforced on every ``put``, evicting least-recently-used entries
by mtime -- hits refresh the mtime), and ``max_age`` expires entries
that have not been written or read for that many seconds (enforced
lazily on ``get`` and during eviction sweeps).  Evictions are counted on
the instance and, when a :class:`~repro.obs.metrics.MetricsRegistry` is
supplied, mirrored as ``result_cache.disk.*`` counters plus a
``result_cache.disk.bytes`` gauge.

:class:`TieredResultCache` layers a bounded in-memory LRU **hot tier**
in front of the disk store (or stands alone, memory-only), with hit /
miss / eviction counters optionally exported through a
:class:`~repro.obs.metrics.MetricsRegistry`.  It is the serving-path
cache of :mod:`repro.serve` -- repeated submissions of a spec are a
dictionary lookup, not a file read -- but works anywhere a
:class:`ResultCache` does (the :class:`~repro.runner.executor.Executor`
only needs ``get``/``put``).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path

from repro.runner.spec import ExperimentSpec
from repro.sim.engine import SimulationReport


class ResultCache:
    """Spec-hash -> :class:`~repro.sim.engine.SimulationReport` store.

    ``max_bytes`` / ``max_age`` (both optional) switch on the expiry
    policy described in the module docstring; ``metrics`` mirrors the
    eviction counters into a registry as ``result_cache.disk.*``.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int | None = None,
        max_age: float | None = None,
        metrics=None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"disk max_bytes must be >= 1, got {max_bytes}"
            )
        if max_age is not None and max_age <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"disk max_age must be > 0, got {max_age}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_age = max_age
        self.metrics = metrics
        self.size_evictions = 0
        self.age_evictions = 0
        self.evicted_bytes = 0
        self._policy_lock = threading.Lock()
        self._bytes = (
            sum(p.stat().st_size for p in self.root.glob("??/*.json"))
            if max_bytes is not None
            else 0
        )
        self._gauge_bytes()

    @property
    def has_policy(self) -> bool:
        return self.max_bytes is not None or self.max_age is not None

    # ------------------------------------------------------------------

    def _path(self, spec_hash: str) -> Path:
        return self.root / spec_hash[:2] / f"{spec_hash}.json"

    def get(self, spec: ExperimentSpec) -> SimulationReport | None:
        """The cached report for ``spec``, or ``None`` on a miss.

        Unreadable or mismatched entries (truncated writes, a stale
        format, a hash collision) are treated as misses, and so is an
        entry older than ``max_age`` -- which is also deleted, counting
        as an age eviction.  A policy-enabled hit refreshes the entry's
        mtime, so recency for LRU eviction means "last written *or*
        read".
        """
        path = self._path(spec.spec_hash)
        if self.max_age is not None and self._expire_one(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, ValueError):
            return None
        if data.get("spec") != spec.to_dict():
            return None
        try:
            report = SimulationReport.from_dict(data["report"])
        except (KeyError, TypeError):
            return None
        if self.has_policy:
            with contextlib.suppress(OSError):
                os.utime(path)
        return report

    def put(self, spec: ExperimentSpec, report: SimulationReport) -> Path:
        """Store ``report`` under ``spec``'s content hash, atomically.

        With ``max_bytes`` set, a put that takes the store over budget
        evicts least-recently-used entries (oldest mtime first) until it
        fits again.
        """
        spec_hash = spec.spec_hash
        path = self._path(spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
            "report": report.to_dict(),
        }
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True, indent=1)
            stream.write("\n")
        if self.max_bytes is not None:
            with self._policy_lock:
                old_size = 0
                with contextlib.suppress(OSError):
                    old_size = path.stat().st_size
                new_size = temp.stat().st_size
                os.replace(temp, path)
                self._bytes += new_size - old_size
                if self._bytes > self.max_bytes:
                    self._evict_to_budget(keep=path)
                self._gauge_bytes()
        else:
            os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # Expiry policy
    # ------------------------------------------------------------------

    def expire(self, now: float | None = None) -> int:
        """One full policy sweep (age cutoff, then byte budget).

        Returns how many entries were evicted.  ``put`` and ``get``
        already enforce the policy incrementally; this is for explicit
        maintenance passes (e.g. a daemon reclaiming space while idle).
        """
        evicted = 0
        if self.max_age is not None:
            cutoff = (
                now if now is not None else time.time()
            ) - self.max_age
            for path in sorted(self.root.glob("??/*.json")):
                try:
                    if path.stat().st_mtime < cutoff:
                        evicted += self._evict(path, "age")
                except OSError:
                    continue
        if self.max_bytes is not None:
            with self._policy_lock:
                self._bytes = sum(
                    p.stat().st_size for p in self.root.glob("??/*.json")
                )
                evicted += self._evict_to_budget()
                self._gauge_bytes()
        return evicted

    def _expire_one(self, path: Path) -> bool:
        """Delete ``path`` if it is older than ``max_age``."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False
        if age <= self.max_age:
            return False
        return bool(self._evict(path, "age"))

    def _evict_to_budget(self, keep: Path | None = None) -> int:
        """Evict oldest-mtime entries until the store fits ``max_bytes``.

        Caller holds ``_policy_lock``.  ``keep`` (the entry just
        written) is never evicted -- a single entry larger than the
        whole budget would otherwise evict itself.
        """
        entries = []
        for path in self.root.glob("??/*.json"):
            if keep is not None and path == keep:
                continue
            with contextlib.suppress(OSError):
                stat = path.stat()
                entries.append((stat.st_mtime, str(path), stat.st_size))
        entries.sort()
        evicted = 0
        for _mtime, path_str, _size in entries:
            if self._bytes <= self.max_bytes:
                break
            evicted += self._evict(Path(path_str), "size")
        return evicted

    def _evict(self, path: Path, reason: str) -> int:
        """Unlink one entry, count it; returns 1 if it was removed."""
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        if reason == "age":
            self.age_evictions += 1
        else:
            self.size_evictions += 1
        self.evicted_bytes += size
        self._bytes -= size
        if self.metrics is not None:
            self.metrics.inc(f"result_cache.disk.evictions_{reason}")
            self.metrics.inc("result_cache.disk.evicted_bytes", size)
        return 1

    def _gauge_bytes(self) -> None:
        if self.metrics is not None and self.max_bytes is not None:
            self.metrics.set_gauge(
                "result_cache.disk.bytes", self._bytes
            )

    # ------------------------------------------------------------------

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.get(spec) is not None

    def __len__(self) -> int:
        return sum(
            1 for _ in self.root.glob("??/*.json")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink()
            removed += 1
        return removed


class TieredResultCache:
    """A bounded in-memory LRU hot tier over an optional disk store.

    ``get`` consults the hot tier first (a dictionary lookup), then the
    disk :class:`ResultCache` (promoting hits into the hot tier); ``put``
    writes through to both.  With ``root=None`` the cache is memory-only
    -- same interface, nothing persisted.  The tier holds at most
    ``capacity`` reports; inserting beyond that evicts the least
    recently used entry (disk copies, when present, survive eviction).

    All operations are thread-safe: the serve daemon's worker threads
    ``put`` while its event loop ``get``\\ s during admission.

    Counters (``hot_hits``, ``hot_misses``, ``disk_hits``,
    ``disk_misses``, ``evictions``) are kept on the instance and, when a
    ``metrics`` registry is supplied, mirrored as
    ``result_cache.<counter>`` counters plus a
    ``result_cache.hot_entries`` gauge, so serving metrics fold into the
    same :class:`~repro.obs.metrics.MetricsRegistry` snapshots as
    everything else.

    ``disk_max_bytes`` / ``disk_max_age`` forward to the disk
    :class:`ResultCache` expiry policy (LRU-by-mtime byte budget and
    idle-age cutoff); its eviction counters surface both in
    :meth:`stats` and, through the same registry, as
    ``result_cache.disk.*``.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        capacity: int = 256,
        metrics=None,
        disk_max_bytes: int | None = None,
        disk_max_age: float | None = None,
    ) -> None:
        if capacity < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"hot-tier capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.disk = (
            ResultCache(
                root,
                max_bytes=disk_max_bytes,
                max_age=disk_max_age,
                metrics=metrics,
            )
            if root is not None
            else None
        )
        self.metrics = metrics
        self._hot: OrderedDict[str, SimulationReport] = OrderedDict()
        self._lock = threading.Lock()
        self.hot_hits = 0
        self.hot_misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        if self.metrics is not None:
            self.metrics.inc(f"result_cache.{name}")

    def _gauge_entries(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(
                "result_cache.hot_entries", len(self._hot)
            )

    # ------------------------------------------------------------------

    def lookup(
        self, spec: ExperimentSpec
    ) -> tuple[SimulationReport | None, str | None]:
        """``(report, tier)`` where tier is ``"hot"``, ``"disk"`` or None.

        The tier label is what the serve daemon streams back to clients
        (``task_hot`` vs ``task_disk`` admission events); plain callers
        use :meth:`get`.
        """
        spec_hash = spec.spec_hash
        with self._lock:
            report = self._hot.get(spec_hash)
            if report is not None:
                self._hot.move_to_end(spec_hash)
                self._count("hot_hits")
                return report, "hot"
            self._count("hot_misses")
        if self.disk is None:
            return None, None
        report = self.disk.get(spec)
        if report is None:
            self._count("disk_misses")
            return None, None
        self._count("disk_hits")
        with self._lock:
            self._insert(spec_hash, report)
        return report, "disk"

    def get(self, spec: ExperimentSpec) -> SimulationReport | None:
        """The cached report for ``spec``, or ``None`` on a miss."""
        report, _tier = self.lookup(spec)
        return report

    def put(self, spec: ExperimentSpec, report: SimulationReport) -> None:
        """Store ``report`` in the hot tier and (if present) on disk."""
        if self.disk is not None:
            self.disk.put(spec, report)
        with self._lock:
            self._insert(spec.spec_hash, report)

    def _insert(self, spec_hash: str, report: SimulationReport) -> None:
        # Caller holds the lock.
        self._hot[spec_hash] = report
        self._hot.move_to_end(spec_hash)
        while len(self._hot) > self.capacity:
            self._hot.popitem(last=False)
            self._count("evictions")
        self._gauge_entries()

    # ------------------------------------------------------------------

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.get(spec) is not None

    def __len__(self) -> int:
        """Entries resident in the hot tier (not the disk store)."""
        with self._lock:
            return len(self._hot)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (JSON-ready, deterministic key order)."""
        with self._lock:
            stats = {
                "capacity": self.capacity,
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "evictions": self.evictions,
                "hot_entries": len(self._hot),
                "hot_hits": self.hot_hits,
                "hot_misses": self.hot_misses,
            }
        if self.disk is not None and self.disk.has_policy:
            stats["disk_age_evictions"] = self.disk.age_evictions
            stats["disk_evicted_bytes"] = self.disk.evicted_bytes
            stats["disk_size_evictions"] = self.disk.size_evictions
        return stats
