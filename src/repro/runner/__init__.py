"""Parallel, cached, observable experiment execution.

The layer between the simulator and everything that sweeps it:

* :mod:`repro.runner.spec` -- frozen, declarative, content-hashed
  descriptions of experiment cells and grids;
* :mod:`repro.runner.executor` -- multiprocess fan-out with per-task
  timeout and bounded retry, plus a bit-identical sequential fallback;
* :mod:`repro.runner.cache` -- content-addressed on-disk result store,
  so re-running a sweep only executes changed cells, plus an in-memory
  LRU hot tier (:class:`TieredResultCache`) for serving paths;
* :mod:`repro.runner.journal` -- JSONL event log and terminal summary.

Quickstart::

    from repro.runner import Executor, SweepSpec, WorkloadSpec
    from repro.sim.system import SystemConfig

    sweep = SweepSpec.from_grid(
        "demo",
        protocols=["two-mode", "write-once"],
        workloads=[
            WorkloadSpec(
                kind="markov", n_nodes=8, n_references=500,
                write_fraction=w, tasks=tuple(range(4)),
            )
            for w in (0.1, 0.5)
        ],
        configs=[SystemConfig(n_nodes=8)],
    )
    results = Executor(workers=4).run(sweep)
"""

from repro.runner.cache import ResultCache, TieredResultCache
from repro.runner.executor import Executor, TaskResult, execute_spec
from repro.runner.journal import RunJournal, read_journal
from repro.runner.spec import (
    SPEC_VERSION,
    ExperimentSpec,
    SweepSpec,
    WorkloadSpec,
    config_from_dict,
    config_to_dict,
)

__all__ = [
    "Executor",
    "ExperimentSpec",
    "ResultCache",
    "RunJournal",
    "SPEC_VERSION",
    "SweepSpec",
    "TaskResult",
    "TieredResultCache",
    "WorkloadSpec",
    "config_from_dict",
    "config_to_dict",
    "execute_spec",
    "read_journal",
]
