"""Declarative experiment specifications with stable content hashes.

An :class:`ExperimentSpec` is everything needed to reproduce one cell of an
evaluation grid -- the machine (:class:`~repro.sim.system.SystemConfig`),
the workload (a :class:`WorkloadSpec` naming a generator and its seed), the
protocol (a :func:`~repro.analysis.compare.default_factories` name) and the
measurement options (warm-up split, verification).  A spec is frozen, pure
data, and JSON-serialisable, so it can cross process boundaries to the
:mod:`repro.runner.executor` workers and key the on-disk
:mod:`repro.runner.cache`.

The :attr:`ExperimentSpec.spec_hash` is a SHA-256 over the spec's canonical
JSON form (sorted keys, no whitespace), so two specs hash equal exactly
when every parameter that can influence the simulation is equal.  A
:class:`SweepSpec` is an ordered grid of cells, typically built with
:meth:`SweepSpec.from_grid`.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.network.multicast import MulticastScheme
from repro.protocol.messages import MessageCosts
from repro.sim.system import SystemConfig
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.ctrace import CompiledTrace

#: Bumped whenever the serialised form changes incompatibly, so stale
#: cache entries from an older layout can never be mistaken for current.
SPEC_VERSION = 1

_WORKLOAD_KINDS = ("markov", "random", "shared-structure")


def _canonical_json(data: object) -> str:
    """The canonical encoding hashed by :attr:`ExperimentSpec.spec_hash`."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """A trace *generator invocation*, not a trace.

    Workers rebuild the trace from this description (generation is cheap
    and deterministic -- see ``tests/workloads/test_determinism.py``), so
    specs stay small enough to hash, journal, and ship between processes.

    ``kind`` selects the generator:

    * ``"markov"`` -- :func:`repro.workloads.markov.markov_block_trace`
      (``tasks`` required; one writer, one shared block);
    * ``"shared-structure"`` --
      :func:`repro.workloads.markov.shared_structure_trace`
      (``tasks`` required; ``n_blocks`` blocks, writers rotating);
    * ``"random"`` -- :func:`repro.workloads.synthetic.random_trace`
      (uniform stress; ``locality`` applies).
    """

    kind: str
    n_nodes: int
    n_references: int
    write_fraction: float
    seed: int = 0
    block_size_words: int = 4
    tasks: tuple[int, ...] = ()
    n_blocks: int = 8
    locality: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if self.kind not in _WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {_WORKLOAD_KINDS}"
            )
        if self.kind in ("markov", "shared-structure") and not self.tasks:
            raise ConfigurationError(
                f"workload kind {self.kind!r} needs a non-empty tasks tuple"
            )

    # ------------------------------------------------------------------

    def build(self) -> Trace:
        """Generate the trace this spec describes (deterministic)."""
        return self._build(compiled=False)

    def build_compiled(self) -> "CompiledTrace":
        """The same trace in columnar form.

        Every generator emits the identical reference stream under either
        form (the seeded round-trip property tests), so a spec's report is
        the same whichever one the executor replays.
        """
        return self._build(compiled=True)

    def _build(self, *, compiled: bool):
        if self.kind == "markov":
            from repro.workloads.markov import markov_block_trace

            return markov_block_trace(
                self.n_nodes,
                tasks=list(self.tasks),
                write_fraction=self.write_fraction,
                n_references=self.n_references,
                block_size_words=self.block_size_words,
                seed=self.seed,
                compiled=compiled,
            )
        if self.kind == "shared-structure":
            from repro.workloads.markov import shared_structure_trace

            return shared_structure_trace(
                self.n_nodes,
                tasks=list(self.tasks),
                write_fraction=self.write_fraction,
                n_references=self.n_references,
                n_blocks=self.n_blocks,
                block_size_words=self.block_size_words,
                seed=self.seed,
                compiled=compiled,
            )
        from repro.workloads.synthetic import random_trace

        return random_trace(
            self.n_nodes,
            self.n_references,
            n_blocks=self.n_blocks,
            block_size_words=self.block_size_words,
            write_fraction=self.write_fraction,
            locality=self.locality,
            seed=self.seed,
            compiled=compiled,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n_nodes": self.n_nodes,
            "n_references": self.n_references,
            "write_fraction": self.write_fraction,
            "seed": self.seed,
            "block_size_words": self.block_size_words,
            "tasks": list(self.tasks),
            "n_blocks": self.n_blocks,
            "locality": self.locality,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            kind=data["kind"],
            n_nodes=data["n_nodes"],
            n_references=data["n_references"],
            write_fraction=data["write_fraction"],
            seed=data["seed"],
            block_size_words=data["block_size_words"],
            tasks=tuple(data["tasks"]),
            n_blocks=data["n_blocks"],
            locality=data["locality"],
        )


# ---------------------------------------------------------------------------
# SystemConfig serialisation
# ---------------------------------------------------------------------------


def config_to_dict(config: SystemConfig) -> dict:
    """A :class:`~repro.sim.system.SystemConfig` as plain JSON data."""
    return {
        "n_nodes": config.n_nodes,
        "block_size_words": config.block_size_words,
        "cache_entries": config.cache_entries,
        "associativity": config.associativity,
        "replacement": config.replacement,
        "costs": {
            "control_bits": config.costs.control_bits,
            "address_bits": config.costs.address_bits,
            "word_bits": config.costs.word_bits,
            "uniform_bits": config.costs.uniform_bits,
        },
        "multicast_scheme": config.multicast_scheme.name,
        "seed": config.seed,
    }


def config_from_dict(data: dict) -> SystemConfig:
    """Rebuild a :class:`~repro.sim.system.SystemConfig` from JSON data."""
    costs = data["costs"]
    return SystemConfig(
        n_nodes=data["n_nodes"],
        block_size_words=data["block_size_words"],
        cache_entries=data["cache_entries"],
        associativity=data["associativity"],
        replacement=data["replacement"],
        costs=MessageCosts(
            control_bits=costs["control_bits"],
            address_bits=costs["address_bits"],
            word_bits=costs["word_bits"],
            uniform_bits=costs["uniform_bits"],
        ),
        multicast_scheme=MulticastScheme[data["multicast_scheme"]],
        seed=data["seed"],
    )


# ---------------------------------------------------------------------------
# Experiment cells and sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an evaluation grid: machine x workload x protocol.

    ``protocol`` names a factory from
    :func:`repro.analysis.compare.default_factories`.  ``warmup``
    references run first without being measured (the cold-start split of
    :func:`repro.analysis.compare.simulated_cost_curve`); the report covers
    only the remaining ``n_references - warmup``.  ``verify`` and
    ``check_invariants_every`` pass straight to
    :func:`repro.sim.engine.run_trace`.

    ``fault_plan`` optionally subjects the cell's network to a
    :class:`~repro.faults.plan.FaultPlan` (see docs/FAULTS.md).  An empty
    plan is normalised to ``None`` at construction, and ``None`` is
    omitted from the serialised form entirely -- so every pre-fault-layer
    spec hash (including the ``sweep_hash`` metadata baked into committed
    benchmark exhibits) is unchanged, while any *non*-empty plan changes
    the hash and can never be served a cached fault-free result.

    ``compiled`` selects the trace form the executor replays: columnar
    (:meth:`WorkloadSpec.build_compiled`, the default) or per-reference
    (:meth:`WorkloadSpec.build`).  The two replays are bit-identical
    (docs/PERF.md), so the knob cannot change a report; like
    ``fault_plan`` it is serialised only in its non-default state, which
    keeps every existing spec hash -- and therefore every cache key and
    committed exhibit -- unchanged.
    """

    protocol: str
    workload: WorkloadSpec
    config: SystemConfig
    warmup: int = 0
    verify: bool = False
    check_invariants_every: int | None = None
    fault_plan: FaultPlan | None = None
    compiled: bool = True

    def __post_init__(self) -> None:
        if not self.protocol:
            raise ConfigurationError("protocol name must be non-empty")
        if not 0 <= self.warmup <= self.workload.n_references:
            raise ConfigurationError(
                f"warmup {self.warmup} outside "
                f"0..{self.workload.n_references}"
            )
        if self.fault_plan is not None and self.fault_plan.is_empty:
            object.__setattr__(self, "fault_plan", None)

    # ------------------------------------------------------------------

    @functools.cached_property
    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON form (the cache key).

        Cached on first access (the spec is frozen, so the hash can
        never change): the serving path reads it several times per
        request and canonicalisation dominates otherwise.
        """
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("ascii")
        ).hexdigest()

    def describe(self) -> str:
        """A short human label for journals and error messages."""
        wl = self.workload
        label = (
            f"{self.protocol} | {wl.kind} w={wl.write_fraction:g} "
            f"n_refs={wl.n_references} seed={wl.seed} "
            f"N={self.config.n_nodes}"
        )
        if self.fault_plan is not None:
            label += f" | faults[{self.fault_plan.summary()}]"
        return label

    def to_dict(self) -> dict:
        data = {
            "version": SPEC_VERSION,
            "protocol": self.protocol,
            "workload": self.workload.to_dict(),
            "config": config_to_dict(self.config),
            "warmup": self.warmup,
            "verify": self.verify,
            "check_invariants_every": self.check_invariants_every,
        }
        if self.fault_plan is not None:
            # Only serialised when present, so fault-free specs keep the
            # exact hashes they had before the fault layer existed.
            data["fault_plan"] = self.fault_plan.to_dict()
        if not self.compiled:
            # Same rule: the default (compiled replay) is the absence of
            # the key, so pre-existing hashes are untouched.
            data["compiled"] = False
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"spec version {version} not supported "
                f"(this build reads version {SPEC_VERSION})"
            )
        plan = data.get("fault_plan")
        return cls(
            protocol=data["protocol"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            config=config_from_dict(data["config"]),
            warmup=data["warmup"],
            verify=data["verify"],
            check_invariants_every=data["check_invariants_every"],
            fault_plan=FaultPlan.from_dict(plan) if plan else None,
            compiled=data.get("compiled", True),
        )


@dataclass(frozen=True)
class SweepSpec:
    """An ordered grid of experiment cells under one name.

    Cell order is part of the contract: the executor returns results in
    cell order regardless of completion order, so a sweep's output is a
    pure function of its spec.
    """

    name: str
    cells: tuple[ExperimentSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.cells)

    @property
    def spec_hash(self) -> str:
        """SHA-256 over the whole grid (name included)."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("ascii")
        ).hexdigest()

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(
            name=data["name"],
            cells=tuple(
                ExperimentSpec.from_dict(cell) for cell in data["cells"]
            ),
        )

    @classmethod
    def from_grid(
        cls,
        name: str,
        *,
        protocols: Sequence[str],
        workloads: Sequence[WorkloadSpec],
        configs: Sequence[SystemConfig],
        warmup: int = 0,
        verify: bool = False,
        check_invariants_every: int | None = None,
    ) -> "SweepSpec":
        """The full cross product, workload-major then config then protocol.

        That order mirrors :func:`repro.analysis.sweep.run_sweep` (one
        parameter point at a time, every protocol at that point), so
        migrated benchmarks keep their record order.
        """
        if not protocols or not workloads or not configs:
            raise ConfigurationError(
                "a sweep grid needs at least one protocol, "
                "workload and config"
            )
        cells = tuple(
            ExperimentSpec(
                protocol=protocol,
                workload=workload,
                config=config,
                warmup=warmup,
                verify=verify,
                check_invariants_every=check_invariants_every,
            )
            for workload in workloads
            for config in configs
            for protocol in protocols
        )
        return cls(name=name, cells=cells)
