"""JSONL run journal: what the executor did, when, and at what cost.

Every scheduling decision emits one JSON object per line -- ``sweep_start``,
``task_cached``, ``task_start``, ``task_retry``, ``task_finish``,
``task_failed``, ``sweep_finish`` -- with the task's spec hash, attempt
number, wall time and traffic counters where applicable.  The journal is
the runner's observability surface: it is how a test (or an operator)
proves that a warm re-run executed zero tasks, that retries happened, or
where the wall-clock went.

Events are buffered in memory as well, so :meth:`RunJournal.counts` and
:meth:`RunJournal.summary` (a terminal table rendered via
:func:`repro.analysis.report.render_table`) work with or without a file
behind the journal.  :func:`read_journal` parses a journal file back into
event dicts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO

from repro.analysis.report import render_table

#: Spec-hash prefix length used in events (full hashes live in the cache).
_HASH_PREFIX = 12

#: Version stamped into every record's ``schema`` field.  Bump when the
#: *meaning* of an existing field changes; merely adding fields does not
#: need a bump -- readers must tolerate unknown keys (and unknown
#: events), so new optional fields like ``metrics`` ride along freely.
JOURNAL_SCHEMA = 1


class RunJournal:
    """Append-only event log for one or more executor runs.

    With ``path=None`` the journal is memory-only; otherwise events are
    appended (and flushed) to the file as they happen, so a tail of the
    file tracks a live sweep.

    ``fsync=True`` additionally forces every appended line to stable
    storage (``os.fsync`` after the flush).  Long-running daemons
    (:mod:`repro.serve`) use this so a kill at any instant loses at most
    the line being written -- and a torn final line is exactly what
    :func:`read_journal` tolerates.
    """

    def __init__(
        self, path: str | Path | None = None, *, fsync: bool = False
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fsync = bool(fsync)
        self.events: list[dict] = []
        self._stream: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------

    def record(self, event: str, **fields: object) -> dict:
        """Append one event (adds ``schema`` and wall-clock ``time``)."""
        entry: dict = {
            "event": event,
            "schema": JOURNAL_SCHEMA,
            "time": time.time(),
            **fields,
        }
        self.events.append(entry)
        if self._stream is not None:
            self._stream.write(json.dumps(entry, sort_keys=True) + "\n")
            self._stream.flush()
            if self.fsync:
                os.fsync(self._stream.fileno())
        return entry

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Typed events (the executor's vocabulary)
    # ------------------------------------------------------------------

    def sweep_start(self, name: str, n_tasks: int, workers: int) -> None:
        self.record(
            "sweep_start", sweep=name, tasks=n_tasks, workers=workers
        )

    def task_cached(self, spec) -> None:
        self.record(
            "task_cached",
            task=spec.spec_hash[:_HASH_PREFIX],
            protocol=spec.protocol,
        )

    def task_start(self, spec, attempt: int) -> None:
        self.record(
            "task_start",
            task=spec.spec_hash[:_HASH_PREFIX],
            protocol=spec.protocol,
            attempt=attempt,
        )

    def task_retry(
        self,
        spec,
        attempt: int,
        error: str,
        *,
        error_class: str | None = None,
        backoff: float = 0.0,
    ) -> None:
        self.record(
            "task_retry",
            task=spec.spec_hash[:_HASH_PREFIX],
            attempt=attempt,
            error=error,
            error_class=error_class,
            backoff=backoff,
        )

    def task_finish(
        self, spec, attempt: int, wall_time: float, report
    ) -> None:
        fields: dict = {}
        # Fault/recovery counters ride along only when faults actually
        # happened, so fault-free journals keep their exact prior shape.
        fault_events = report.stats.fault_events()
        if fault_events:
            fields["fault_events"] = fault_events
        # Per-incident attribution (which block, which destination, what
        # triggered it) for the rare events -- dead routes, retry
        # exhaustion, degradation.  Distinct from the counters above:
        # two incidents on the same block in one reference are two
        # entries here but may share a counter.
        fault_log = report.stats.fault_event_log()
        if fault_log:
            fields["fault_log"] = fault_log
        # Same contract for the observability aggregates: only traced
        # runs (Stats with a non-empty MetricsRegistry) carry them.
        metrics = report.stats.metrics
        if metrics is not None and not metrics.empty:
            fields["metrics"] = metrics.to_dict()
        self.record(
            "task_finish",
            task=spec.spec_hash[:_HASH_PREFIX],
            protocol=spec.protocol,
            attempt=attempt,
            wall_time=wall_time,
            references=report.n_references,
            refs_per_sec=(
                round(report.n_references / wall_time, 1)
                if wall_time > 0
                else None
            ),
            total_bits=report.network_total_bits,
            **fields,
        )

    def task_failed(
        self,
        spec,
        attempts: int,
        error: str,
        *,
        error_class: str | None = None,
    ) -> None:
        self.record(
            "task_failed",
            task=spec.spec_hash[:_HASH_PREFIX],
            attempts=attempts,
            error=error,
            error_class=error_class,
        )

    def sweep_finish(self, name: str, wall_time: float) -> None:
        counts = self.counts()
        self.record(
            "sweep_finish",
            sweep=name,
            wall_time=wall_time,
            **counts,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Executed / cached / retried / failed task tallies so far."""
        tally = {"executed": 0, "cached": 0, "retried": 0, "failed": 0}
        for entry in self.events:
            if entry["event"] == "task_finish":
                tally["executed"] += 1
            elif entry["event"] == "task_cached":
                tally["cached"] += 1
            elif entry["event"] == "task_retry":
                tally["retried"] += 1
            elif entry["event"] == "task_failed":
                tally["failed"] += 1
        return tally

    def summary(self) -> str:
        """A terminal progress summary of everything journaled so far."""
        counts = self.counts()
        finishes = [
            entry for entry in self.events
            if entry["event"] == "task_finish"
        ]
        wall = sum(entry["wall_time"] for entry in finishes)
        references = sum(entry["references"] for entry in finishes)
        bits = sum(entry["total_bits"] for entry in finishes)
        rows = [
            ("tasks executed", counts["executed"]),
            ("tasks cached", counts["cached"]),
            ("retries", counts["retried"]),
            ("failures", counts["failed"]),
            ("task wall time", f"{wall:.3f} s"),
            ("references simulated", references),
            (
                "throughput",
                f"{references / wall:,.0f} refs/s" if wall > 0 else "n/a",
            ),
            ("network bits", bits),
        ]
        return render_table(
            ("metric", "value"), rows, title="runner summary"
        )


def read_journal(path: str | Path) -> list[dict]:
    """Parse a journal file back into its event dicts (blank-line safe).

    Forward-compatible by construction: records keep whatever keys they
    carry -- unknown fields, unknown event names and newer ``schema``
    versions all pass through untouched, so a reader built against this
    version can load journals written by later ones (and journals from
    before the ``schema`` field existed).  Non-object lines are skipped
    rather than fatal.

    Tolerant of a **torn tail**: a writer killed mid-append (power loss,
    ``SIGKILL`` on the serve daemon) leaves at most one truncated final
    line, which is dropped rather than fatal.  Corruption anywhere
    *before* the final line still raises -- that is not a crash
    signature, it is a damaged file.
    """
    events = []
    with open(path, "r", encoding="utf-8") as stream:
        lines = stream.read().split("\n")
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            if any(rest.strip() for rest in lines[index + 1:]):
                raise
            break  # torn final line from an interrupted append
        if isinstance(entry, dict):
            events.append(entry)
    return events
