"""Event and traffic statistics for protocol simulations.

Two ledgers are kept:

* *events* -- protocol-level occurrences (hits, misses, ownership
  transfers, invalidations, ...), counted by name;
* *traffic* -- network cost per message kind, in bits (the eq. 1 metric)
  and in message count.

Event names are module constants rather than bare strings at call sites so
a typo fails loudly in tests (``Stats.count`` accepts any name, but the
protocols only use the constants below).
"""

from __future__ import annotations

from collections import Counter

# ---------------------------------------------------------------------------
# Event names shared by all protocols
# ---------------------------------------------------------------------------

READS = "reads"
WRITES = "writes"
READ_HITS = "read_hits"
READ_MISSES = "read_misses"
WRITE_HITS = "write_hits"
WRITE_MISSES = "write_misses"
COLD_MISSES = "cold_misses"  # no cached copy existed anywhere
COHERENCE_MISSES = "coherence_misses"  # copies existed at other caches
REPLACEMENTS = "replacements"
WRITEBACKS = "writebacks"
INVALIDATIONS = "invalidations"
WRITE_UPDATES = "write_updates"
OWNERSHIP_TRANSFERS = "ownership_transfers"
MODE_SWITCHES = "mode_switches"
GLOBAL_READS = "global_reads"  # word reads served remotely by an owner
REMOTE_WORD_WRITES = "remote_word_writes"  # uncached baseline writes

# Fault-injection and recovery events (see repro.faults / docs/FAULTS.md).
# All zero on a fault-free run; the ``fault_`` prefix is the contract used
# by Stats.fault_events and the runner journal.
FAULT_DROPS = "fault_drops"  # deliveries lost and detected via ack timeout
FAULT_DUPLICATES = "fault_duplicates"  # deliveries the network repeated
FAULT_DELAYS = "fault_delays"  # deliveries that arrived late
FAULT_RETRIES = "fault_retries"  # re-sends triggered by drops
FAULT_RETRY_EXHAUSTED = "fault_retry_exhausted"  # re-send budgets used up
FAULT_DEAD_ROUTES = "fault_dead_routes"  # sends aborted by a dead path
FAULT_DEGRADED_BLOCKS = "fault_degraded_blocks"  # blocks forced uncacheable
FAULT_DIRECT_READS = "fault_direct_reads"  # memory-direct degraded reads
FAULT_DIRECT_WRITES = "fault_direct_writes"  # memory-direct degraded writes
FAULT_UNROUTABLE = "fault_unroutable_sends"  # recovery sends with no path


class Stats:
    """Counters for one protocol run."""

    __slots__ = (
        "events",
        "traffic_bits",
        "traffic_messages",
        "metrics",
        "fault_log",
    )

    def __init__(self) -> None:
        self.events: Counter[str] = Counter()
        self.traffic_bits: Counter[str] = Counter()
        self.traffic_messages: Counter[str] = Counter()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` attached
        #: by :func:`repro.obs.hooks.attach_recorder` when tracing is on.
        #: ``None`` (the default) keeps snapshots in their exact prior
        #: shape -- ``to_dict`` only emits a ``metrics`` key when there
        #: is something in it.
        self.metrics = None
        #: Structured log of *rare* fault events (dead routes, retry
        #: exhaustion, degradation) recorded via :meth:`record_fault`.
        #: Distinguishes e.g. a retry exhaustion and a degradation of the
        #: same block within one reference, with the triggering
        #: destination attached -- information the aggregate counters
        #: collapse.  Empty on a fault-free run; serialized only when
        #: non-empty so prior snapshots keep their exact bytes.
        self.fault_log: list[dict] = []

    # ------------------------------------------------------------------

    def count(self, event: str, increment: int = 1) -> None:
        """Record ``increment`` occurrences of ``event``."""
        self.events[event] += increment

    def record_fault(self, event: str, **fields) -> None:
        """Count ``event`` and append a structured entry to the fault log.

        ``fields`` carry per-occurrence context (``block``, ``dest``,
        ``dests``...); ``None``-valued fields are omitted so entries stay
        compact and JSON round-trips are exact.  Use for rare recovery
        events only -- per-delivery events (drops, retries) stay pure
        counters to keep hostile-plan runs cheap.
        """
        self.events[event] += 1
        entry = {"event": event}
        for key, value in fields.items():
            if value is not None:
                entry[key] = value
        self.fault_log.append(entry)

    def record_traffic(
        self, kind: str, bits: int, messages: int = 1
    ) -> None:
        """Record network traffic of one protocol message kind."""
        self.traffic_bits[kind] += bits
        self.traffic_messages[kind] += messages

    # ------------------------------------------------------------------

    @property
    def total_bits(self) -> int:
        """Total communication cost attributed to the protocol (eq. 1)."""
        return sum(self.traffic_bits.values())

    @property
    def total_messages(self) -> int:
        """Total protocol messages sent (multicasts count once)."""
        return sum(self.traffic_messages.values())

    @property
    def references(self) -> int:
        """Processor references executed."""
        return self.events[READS] + self.events[WRITES]

    @property
    def cost_per_reference(self) -> float:
        """Mean communication cost per memory reference (the §4 metric)."""
        refs = self.references
        return self.total_bits / refs if refs else 0.0

    def fault_events(self) -> dict[str, int]:
        """The fault/recovery counters alone, sorted by name.

        Empty on a fault-free run; the runner journal and the chaos
        survival report both record exactly this subset.
        """
        return {
            name: count
            for name, count in sorted(self.events.items())
            if name.startswith("fault_")
        }

    def fault_event_log(self) -> list[dict]:
        """The structured fault log, in occurrence order (copies entries)."""
        return [dict(entry) for entry in self.fault_log]

    def merge(self, other: "Stats") -> None:
        """Fold another run's counters (and metrics, if any) into this one."""
        self.events.update(other.events)
        self.traffic_bits.update(other.traffic_bits)
        self.traffic_messages.update(other.traffic_messages)
        self.fault_log.extend(dict(entry) for entry in other.fault_log)
        if other.metrics is not None:
            if self.metrics is None:
                from repro.obs.metrics import MetricsRegistry

                self.metrics = MetricsRegistry()
            self.metrics.merge(other.metrics)

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Plain-dict snapshot (for reports and JSON dumps)."""
        return {
            "events": dict(self.events),
            "traffic_bits": dict(self.traffic_bits),
            "traffic_messages": dict(self.traffic_messages),
        }

    def to_dict(self) -> dict:
        """JSON-ready snapshot; round-trips through :meth:`from_dict`.

        A ``metrics`` key appears only when a registry is attached and
        non-empty, so untraced snapshots keep their exact prior bytes.
        """
        data = self.as_dict()
        if self.fault_log:
            data["fault_log"] = [dict(entry) for entry in self.fault_log]
        if self.metrics is not None and not self.metrics.empty:
            data["metrics"] = self.metrics.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Stats":
        """Rebuild a :class:`Stats` from a :meth:`to_dict` snapshot."""
        stats = cls()
        stats.events.update(data.get("events", {}))
        stats.traffic_bits.update(data.get("traffic_bits", {}))
        stats.traffic_messages.update(data.get("traffic_messages", {}))
        stats.fault_log.extend(
            dict(entry) for entry in data.get("fault_log", [])
        )
        metrics = data.get("metrics")
        if metrics:
            # Imported lazily: repro.sim must stay importable without
            # pulling the observability layer into every run.
            from repro.obs.metrics import MetricsRegistry

            stats.metrics = MetricsRegistry.from_dict(metrics)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stats(references={self.references}, "
            f"total_bits={self.total_bits})"
        )
