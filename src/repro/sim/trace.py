"""Reference traces and their on-disk format.

A trace is an ordered list of :class:`~repro.types.Reference` items -- the
interleaved memory references of all processors, exactly what a trace-driven
coherence simulator of the period consumed.  The text format is one
reference per line::

    # repro-trace v1 n_nodes=8 block_size=4
    0 R 3:1 0
    2 W 3:1 17

i.e. ``node op block:offset value``.  Comments and blank lines are ignored
after the header.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.types import Address, NodeId, Op, Reference

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.sim.ctrace import CompiledTrace

_HEADER_PREFIX = "# repro-trace v1"


@dataclass
class Trace:
    """An ordered reference stream plus the geometry it was built for."""

    references: list[Reference] = field(default_factory=list)
    n_nodes: int = 0
    block_size_words: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every reference against the declared geometry."""
        if self.n_nodes <= 0:
            raise TraceError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.block_size_words <= 0:
            raise TraceError(
                f"block_size_words must be positive, "
                f"got {self.block_size_words}"
            )
        for index, ref in enumerate(self.references):
            if not 0 <= ref.node < self.n_nodes:
                raise TraceError(
                    f"reference {index}: node {ref.node} outside "
                    f"0..{self.n_nodes - 1}"
                )
            if ref.address.block < 0:
                raise TraceError(
                    f"reference {index}: negative block "
                    f"{ref.address.block}"
                )
            if not 0 <= ref.address.offset < self.block_size_words:
                raise TraceError(
                    f"reference {index}: offset {ref.address.offset} "
                    f"outside block of {self.block_size_words} words"
                )

    def __len__(self) -> int:
        return len(self.references)

    def __iter__(self) -> Iterator[Reference]:
        return iter(self.references)

    def append(self, reference: Reference) -> None:
        self.references.append(reference)

    def compile(self) -> "CompiledTrace":
        """The columnar :class:`~repro.sim.ctrace.CompiledTrace` form.

        Lossless: ``trace.compile().to_trace()`` reproduces the exact
        reference list, and replaying either form is bit-identical.
        """
        # Imported lazily: ctrace sits above this module.
        from repro.sim.ctrace import CompiledTrace

        return CompiledTrace.from_trace(self)

    @property
    def write_fraction(self) -> float:
        """Observed fraction of writes (the paper's ``w``)."""
        if not self.references:
            return 0.0
        writes = sum(1 for ref in self.references if ref.is_write)
        return writes / len(self.references)

    def nodes_touching(self, block: int) -> frozenset[NodeId]:
        """Processors that reference ``block`` anywhere in the trace."""
        return frozenset(
            ref.node for ref in self.references if ref.address.block == block
        )

    @staticmethod
    def concatenate(traces: "Sequence[Trace]") -> "Trace":
        """One trace after another (phased workloads).

        Geometries must agree on block size; the node count is the
        maximum of the parts.
        """
        if not traces:
            raise TraceError("cannot concatenate zero traces")
        block_sizes = {trace.block_size_words for trace in traces}
        if len(block_sizes) != 1:
            raise TraceError(
                f"mismatched block sizes {sorted(block_sizes)}"
            )
        references = []
        for trace in traces:
            references.extend(trace.references)
        return Trace(
            references,
            max(trace.n_nodes for trace in traces),
            block_sizes.pop(),
        )

    @staticmethod
    def interleave(traces: "Sequence[Trace]") -> "Trace":
        """Round-robin merge (concurrently active workloads).

        References are taken one at a time from each trace in turn;
        when a trace runs out the remaining ones continue.
        """
        if not traces:
            raise TraceError("cannot interleave zero traces")
        block_sizes = {trace.block_size_words for trace in traces}
        if len(block_sizes) != 1:
            raise TraceError(
                f"mismatched block sizes {sorted(block_sizes)}"
            )
        references = []
        iterators = [iter(trace.references) for trace in traces]
        while iterators:
            remaining = []
            for iterator in iterators:
                item = next(iterator, None)
                if item is not None:
                    references.append(item)
                    remaining.append(iterator)
            iterators = remaining
        return Trace(
            references,
            max(trace.n_nodes for trace in traces),
            block_sizes.pop(),
        )


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------


def _format_reference(ref: Reference) -> str:
    return (
        f"{ref.node} {ref.op.value} "
        f"{ref.address.block}:{ref.address.offset} {ref.value}"
    )


def _parse_reference(line: str, line_no: int) -> Reference:
    parts = line.split()
    if len(parts) != 4:
        raise TraceError(
            f"line {line_no}: expected 'node op block:offset value', "
            f"got {line!r}"
        )
    node_text, op_text, addr_text, value_text = parts
    try:
        op = Op(op_text)
    except ValueError:
        raise TraceError(
            f"line {line_no}: unknown operation {op_text!r}"
        ) from None
    try:
        block_text, offset_text = addr_text.split(":")
        address = Address(int(block_text), int(offset_text))
        return Reference(int(node_text), op, address, int(value_text))
    except ValueError:
        raise TraceError(f"line {line_no}: malformed fields in {line!r}") from None


def _parse_header(header: str) -> tuple[int, int]:
    """``(n_nodes, block_size)`` from a v1 header line."""
    if not header.startswith(_HEADER_PREFIX):
        raise TraceError(
            f"bad trace header {header.strip()!r}; "
            f"expected {_HEADER_PREFIX!r}"
        )
    fields = dict(
        item.split("=", 1)
        for item in header[len(_HEADER_PREFIX) :].split()
        if "=" in item
    )
    try:
        return int(fields["n_nodes"]), int(fields["block_size"])
    except (KeyError, ValueError):
        raise TraceError(
            f"trace header missing n_nodes/block_size: {header.strip()!r}"
        ) from None


def dump_trace(trace: "Trace | CompiledTrace", stream: io.TextIOBase) -> None:
    """Write either trace form to an open text stream (same format)."""
    if not isinstance(trace, Trace):
        # Imported lazily: ctrace sits above this module.
        from repro.sim.ctrace import dump_compiled_trace

        dump_compiled_trace(trace, stream)
        return
    stream.write(
        f"{_HEADER_PREFIX} n_nodes={trace.n_nodes} "
        f"block_size={trace.block_size_words}\n"
    )
    for ref in trace.references:
        stream.write(_format_reference(ref) + "\n")


def parse_trace(stream: Iterable[str]) -> Trace:
    """Read a trace from an iterable of text lines."""
    lines = iter(stream)
    try:
        header = next(lines)
    except StopIteration:
        raise TraceError("empty trace file") from None
    n_nodes, block_size = _parse_header(header)
    references = []
    for line_no, line in enumerate(lines, start=2):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        references.append(_parse_reference(text, line_no))
    return Trace(references, n_nodes, block_size)


def save_trace(trace: "Trace | CompiledTrace", path: str | Path) -> None:
    """Write either trace form to ``path``."""
    with open(path, "w", encoding="ascii") as stream:
        dump_trace(trace, stream)


def load_trace(path: str | Path) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "r", encoding="ascii") as stream:
        return parse_trace(stream)
