"""Trace-driven simulation engine.

* :mod:`repro.sim.stats` -- event and traffic counters;
* :mod:`repro.sim.system` -- the machine: caches + memories + omega network;
* :mod:`repro.sim.trace` -- reference traces and their on-disk format;
* :mod:`repro.sim.engine` -- runs a trace through a protocol, verifying that
  every read returns the most recently written value.
"""

from repro.sim.engine import SimulationReport, run_trace
from repro.sim.snapshot import block_snapshot, system_snapshot
from repro.sim.stats import Stats
from repro.sim.system import System, SystemConfig
from repro.sim.timing import TimingReport, makespan, schedule
from repro.sim.trace import Trace, load_trace, save_trace

__all__ = [
    "SimulationReport",
    "Stats",
    "System",
    "SystemConfig",
    "TimingReport",
    "Trace",
    "block_snapshot",
    "load_trace",
    "makespan",
    "run_trace",
    "save_trace",
    "schedule",
    "system_snapshot",
]
