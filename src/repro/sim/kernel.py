"""Batched columnar replay: chunk-at-a-time execution of compiled traces.

The per-reference fast path (:class:`~repro.protocol.fastpath.FastPathTable`)
already answers most steady-state references from a memo, but it still pays
a Python-level dispatch -- dict probe, epoch compare, live state checks,
policy consultation -- for *every* reference.  At N=1024 that dispatch, not
the protocol, is the simulation's bottleneck.

:class:`BatchedKernel` removes it.  A compiled trace's ``array('q')``
columns are scanned in chunks; each chunk is folded to its distinct
``(node, block, op)`` keys in one C-speed pass, and the fast-path record
behind each key is validated *once per chunk* instead of once per
reference.  A fully-validated chunk then executes without touching Python
per reference again:

* reference counts per record come from one :class:`collections.Counter`
  pass, and identical per-hit ledger/Stats deltas are accumulated as plain
  integers and flushed once at the end of the replay;
* replacement-policy touches collapse to one touch per distinct key, in
  last-occurrence order -- for a recency policy the final per-set order
  depends only on each way's *last* touch, so this is exact;
* data-word stores collapse to the last value written per ``(key,
  offset)`` -- intermediate values are never observed, because fast-path
  reads do not read data words and value verification is gated off;
* message-bearing records (global-read remote reads, distributed-write
  multicast writes) replay their memoised route plans with
  ``apply_plan_traffic_scaled``, bit-identical to per-send accounting.

Any chunk that fails validation -- an unregistered key, a stale epoch or
present-vector stamp, a node or offset outside the configuration, a mode
policy that wants to switch -- falls back to
:meth:`~repro.protocol.fastpath.FastPathTable.replay` for that chunk, which
handles misses, re-registration and error reporting exactly as before
(``base_index`` keeps error messages numbered in the full trace).  The
chunk size adapts: it shrinks on fallback so a churning phase pays little
validation, and doubles on clean chunks up to a cap so a steady-state
phase amortises validation over thousands of references.

Nothing inside a clean chunk can invalidate its own validation: every
executed reference is a hit, hits send no un-memoised messages, never
bump ``fastpath_epoch``/``present_epoch``, and the kernel is only handed
out (:meth:`~repro.protocol.stenstrom.StenstromProtocol.batched_kernel`)
when the mode policy declares itself ``batchable`` (observe a no-op,
decide pure) -- and decide is pre-checked to return ``None`` for every
key in the chunk.  Everything that gates the fast path (faults, recorder,
message log, verification) gates the kernel too, so batched replay is
bit-identical to the per-reference path (proven every ``repro perf`` run;
docs/PERF.md).
"""

from __future__ import annotations

from collections import Counter
from itertools import compress
from typing import TYPE_CHECKING

from repro.cache.state import Mode
from repro.protocol.messages import MsgKind
from repro.sim import stats as ev

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.protocol.fastpath import FastPathTable
    from repro.protocol.stenstrom import StenstromProtocol
    from repro.sim.ctrace import CompiledTrace

#: Chunk-size bounds.  The kernel starts small (cheap warmup misses),
#: doubles on every clean chunk and halves back on every fallback.
MIN_CHUNK = 64
MAX_CHUNK = 8192


class BatchedKernel:
    """Chunked replay over a :class:`FastPathTable`'s records.

    ``batched_refs`` counts references executed by clean chunks and
    ``fallback_refs`` those delegated to the per-reference table, across
    all :meth:`replay` calls -- the observability hook for benchmarks and
    the eligibility tests.
    """

    __slots__ = ("_protocol", "_table", "batched_refs", "fallback_refs")

    def __init__(
        self, protocol: "StenstromProtocol", table: "FastPathTable"
    ) -> None:
        self._protocol = protocol
        self._table = table
        self.batched_refs = 0
        self.fallback_refs = 0

    def replay(self, trace: "CompiledTrace") -> tuple[int, int]:
        """Replay every column row; returns ``(n_reads, n_writes)``."""
        protocol = self._protocol
        table = self._table
        system = protocol.system
        n_nodes = system.n_nodes
        block_size = system.config.block_size_words
        policy = protocol.mode_policy
        reads = table._reads
        writes = table._writes
        table_replay = table.replay
        dw = Mode.DISTRIBUTED_WRITE
        gr = Mode.GLOBAL_READ
        nodes_col = trace.nodes
        ops_col = trace.ops
        blocks_col = trace.blocks
        offsets_col = trace.offsets
        values_col = trace.values
        n = len(nodes_col)
        n_reads = n_writes = 0
        batched = fallback = 0
        # Deferred per-record counts and scalar accumulators, flushed once
        # (same commuting argument as FastPathTable.replay: nothing reads
        # the ledgers mid-replay and Counter/array addition commutes with
        # the interleaved fallback-chunk updates).
        local_read_hits = 0
        fast_write_hits = 0
        gr_pending: dict[int, list] = {}
        gr_pending_get = gr_pending.get
        dw_pending: dict[int, list] = {}
        dw_pending_get = dw_pending.get
        chunk = MIN_CHUNK
        i = 0
        try:
            while i < n:
                j = i + chunk
                if j > n:
                    j = n
                nodes = nodes_col[i:j]
                ops = ops_col[i:j]
                blocks = blocks_col[i:j]
                offsets = offsets_col[i:j]
                epoch = protocol.fastpath_epoch
                pepoch = protocol.present_epoch
                keys = None
                counts = None
                ok = (
                    min(nodes) >= 0
                    and max(nodes) < n_nodes
                    and min(offsets) >= 0
                    and max(offsets) < block_size
                )
                if ok:
                    keys = [
                        ((block * n_nodes + node) << 1) | op
                        for node, op, block in zip(nodes, ops, blocks)
                    ]
                    counts = Counter(keys)
                    for key in counts:
                        record = (
                            writes.get(key >> 1)
                            if key & 1
                            else reads.get(key >> 1)
                        )
                        if record is None or record[0] != epoch:
                            ok = False
                            break
                        field = record[1].state_field
                        if key & 1:
                            if len(record) == 5:
                                if not (
                                    field.valid
                                    and field.owned
                                    and (
                                        not field.distributed_write
                                        or len(field.present) == 1
                                    )
                                ):
                                    ok = False
                                    break
                                mode = (
                                    dw if field.distributed_write else gr
                                )
                                n_sharers = len(field.present)
                            else:
                                if not (
                                    field.valid
                                    and field.owned
                                    and field.distributed_write
                                    and record[5] == pepoch
                                ):
                                    ok = False
                                    break
                                mode = dw
                                n_sharers = len(field.present)
                        else:
                            owner_field = record[6].state_field
                            if len(record) == 7:
                                if not field.valid:
                                    ok = False
                                    break
                                mode = (
                                    dw
                                    if owner_field.distributed_write
                                    else gr
                                )
                            else:
                                if field.valid or not (
                                    owner_field.owned
                                    and not owner_field.distributed_write
                                ):
                                    ok = False
                                    break
                                mode = gr
                            n_sharers = len(owner_field.present)
                        if policy is not None and (
                            policy.decide(
                                (key >> 1) // n_nodes, mode, n_sharers
                            )
                            is not None
                        ):
                            # The per-reference path would switch modes
                            # mid-chunk; let it.
                            ok = False
                            break
                if not ok:
                    nr, nw = table_replay(trace[i:j], i)
                    n_reads += nr
                    n_writes += nw
                    fallback += j - i
                    i = j
                    if chunk > MIN_CHUNK:
                        chunk >>= 1
                    continue
                # Clean chunk: every reference is a hit of a validated
                # record and nothing below can invalidate one.
                chunk_writes = 0
                has_write_keys = False
                for key, count in counts.items():
                    if key & 1:
                        has_write_keys = True
                        chunk_writes += count
                        record = writes[key >> 1]
                        record[1].state_field.modified = True
                        if len(record) == 5:
                            fast_write_hits += count
                        else:
                            counted = dw_pending_get(id(record))
                            if counted is None:
                                dw_pending[id(record)] = [record, count]
                            else:
                                counted[1] += count
                    else:
                        record = reads[key >> 1]
                        if len(record) == 7:
                            local_read_hits += count
                        else:
                            counted = gr_pending_get(id(record))
                            if counted is None:
                                gr_pending[id(record)] = [record, count]
                            else:
                                counted[1] += count
                # One touch per key, in last-occurrence order: the final
                # recency order per set depends only on each way's last
                # touch.
                last_pos = dict(zip(keys, range(len(keys))))
                for key in sorted(last_pos, key=last_pos.__getitem__):
                    record = writes[key >> 1] if key & 1 else reads[key >> 1]
                    record[2].touch(record[3], record[4])
                if has_write_keys:
                    # Last value per (key, offset) wins; intermediate
                    # values are unobservable (fast-path reads do not
                    # read data and verification is gated off).
                    values = values_col[i:j]
                    stores = dict(
                        zip(
                            compress(zip(keys, offsets), ops),
                            compress(values, ops),
                        )
                    )
                    for (key, offset), value in stores.items():
                        record = writes[key >> 1]
                        record[1].data[offset] = value
                        if len(record) != 5:
                            for copy_entry in record[6]:
                                copy_entry.data[offset] = value
                n_chunk = j - i
                n_writes += chunk_writes
                n_reads += n_chunk - chunk_writes
                batched += n_chunk
                i = j
                if chunk < MAX_CHUNK:
                    chunk <<= 1
        finally:
            stats = protocol.stats
            events = stats.events
            traffic_bits = stats.traffic_bits
            traffic_messages = stats.traffic_messages
            gr_hits = 0
            if gr_pending:
                apply_scaled = system.network.apply_plan_traffic_scaled
                request_bits = protocol._cost_request
                word_owner_bits = protocol._cost_word_owner
                bits_out = bits_back = 0
                for record, count in gr_pending.values():
                    gr_hits += count
                    bits_out += record[8] * count
                    bits_back += record[10] * count
                    apply_scaled(record[7], request_bits, count)
                    apply_scaled(record[9], word_owner_bits, count)
                traffic_bits[MsgKind.LOAD_DIRECT.value] += bits_out
                traffic_messages[MsgKind.LOAD_DIRECT.value] += gr_hits
                traffic_bits[MsgKind.WORD_REPLY.value] += bits_back
                traffic_messages[MsgKind.WORD_REPLY.value] += gr_hits
                events[ev.READ_MISSES] += gr_hits
                events[ev.COHERENCE_MISSES] += gr_hits
                events[ev.GLOBAL_READS] += gr_hits
            dw_hits = 0
            if dw_pending:
                apply_scaled = system.network.apply_plan_traffic_scaled
                word_bits = protocol._cost_word
                bits_update = 0
                for record, count in dw_pending.values():
                    dw_hits += count
                    bits_update += record[8] * count
                    apply_scaled(record[7], word_bits, count)
                traffic_bits[MsgKind.WRITE_UPDATE.value] += bits_update
                traffic_messages[MsgKind.WRITE_UPDATE.value] += dw_hits
                events[ev.WRITE_UPDATES] += dw_hits
            if local_read_hits or gr_hits:
                events[ev.READS] += local_read_hits + gr_hits
            if local_read_hits:
                events[ev.READ_HITS] += local_read_hits
            if fast_write_hits or dw_hits:
                events[ev.WRITES] += fast_write_hits + dw_hits
                events[ev.WRITE_HITS] += fast_write_hits + dw_hits
            table.hits += batched
            self.batched_refs += batched
            self.fallback_refs += fallback
        return n_reads, n_writes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedKernel(batched={self.batched_refs}, "
            f"fallback={self.fallback_refs})"
        )
