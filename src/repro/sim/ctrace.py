"""Columnar compiled traces: the replay-speed form of a reference stream.

A :class:`~repro.sim.trace.Trace` is a list of
:class:`~repro.types.Reference` NamedTuples -- convenient to build and
inspect, but every replayed reference pays for attribute access and (when
generated) a heap allocation.  A :class:`CompiledTrace` stores the same
stream as five parallel ``array('q')`` columns::

    nodes[i] ops[i] blocks[i] offsets[i] values[i]

with ``ops[i]`` equal to 1 for a write and 0 for a read.  The batched loop
in :func:`repro.sim.engine.run_trace` iterates the columns directly (C-speed
``zip`` over arrays, no NamedTuple construction), and the workload
generators can emit straight into the columns through
:func:`trace_builder` without ever materialising a ``Reference``.

Both forms describe *exactly* the same stream: ``Trace.compile()`` /
:meth:`CompiledTrace.to_trace` round-trip losslessly, the text format of
:mod:`repro.sim.trace` reads and writes both, and replaying either through
the same protocol produces bit-identical
:class:`~repro.sim.engine.SimulationReport` results (proven every ``repro
perf`` run; see docs/PERF.md).
"""

from __future__ import annotations

import io
from array import array
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TraceError
from repro.sim.trace import Trace, _parse_header
from repro.types import Address, Op, Reference

_WRITE = 1
_READ = 0


class CompiledTrace:
    """A reference stream as five parallel ``array('q')`` columns."""

    __slots__ = (
        "nodes",
        "ops",
        "blocks",
        "offsets",
        "values",
        "n_nodes",
        "block_size_words",
    )

    def __init__(
        self,
        nodes: array,
        ops: array,
        blocks: array,
        offsets: array,
        values: array,
        n_nodes: int,
        block_size_words: int,
        *,
        validate: bool = True,
    ) -> None:
        self.nodes = nodes
        self.ops = ops
        self.blocks = blocks
        self.offsets = offsets
        self.values = values
        self.n_nodes = n_nodes
        self.block_size_words = block_size_words
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Validation (same contract as Trace.validate)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the columns against the declared geometry."""
        if self.n_nodes <= 0:
            raise TraceError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.block_size_words <= 0:
            raise TraceError(
                f"block_size_words must be positive, "
                f"got {self.block_size_words}"
            )
        lengths = {
            len(self.nodes),
            len(self.ops),
            len(self.blocks),
            len(self.offsets),
            len(self.values),
        }
        if len(lengths) != 1:
            raise TraceError(
                f"ragged columns: lengths {sorted(lengths)} must agree"
            )
        if not self.nodes:
            return
        # min/max run at C speed; the index hunt only happens on failure.
        if min(self.nodes) < 0 or max(self.nodes) >= self.n_nodes:
            index, node = next(
                (i, n)
                for i, n in enumerate(self.nodes)
                if not 0 <= n < self.n_nodes
            )
            raise TraceError(
                f"reference {index}: node {node} outside "
                f"0..{self.n_nodes - 1}"
            )
        if min(self.blocks) < 0:
            index = next(
                i for i, b in enumerate(self.blocks) if b < 0
            )
            raise TraceError(
                f"reference {index}: negative block {self.blocks[index]}"
            )
        if min(self.offsets) < 0 or max(self.offsets) >= self.block_size_words:
            index = next(
                i
                for i, o in enumerate(self.offsets)
                if not 0 <= o < self.block_size_words
            )
            raise TraceError(
                f"reference {index}: offset {self.offsets[index]} "
                f"outside block of {self.block_size_words} words"
            )
        if min(self.ops) < _READ or max(self.ops) > _WRITE:
            index = next(
                i for i, op in enumerate(self.ops) if op not in (0, 1)
            )
            raise TraceError(
                f"reference {index}: op column holds {self.ops[index]}, "
                f"expected 0 (read) or 1 (write)"
            )

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Reference]:
        for node, op, block, offset, value in zip(
            self.nodes, self.ops, self.blocks, self.offsets, self.values
        ):
            yield Reference(
                node,
                Op.WRITE if op else Op.READ,
                Address(block, offset),
                value,
            )

    def __getitem__(self, item):
        if isinstance(item, slice):
            return CompiledTrace(
                self.nodes[item],
                self.ops[item],
                self.blocks[item],
                self.offsets[item],
                self.values[item],
                self.n_nodes,
                self.block_size_words,
                validate=False,
            )
        return Reference(
            self.nodes[item],
            Op.WRITE if self.ops[item] else Op.READ,
            Address(self.blocks[item], self.offsets[item]),
            self.values[item],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledTrace):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.block_size_words == other.block_size_words
            and self.nodes == other.nodes
            and self.ops == other.ops
            and self.blocks == other.blocks
            and self.offsets == other.offsets
            and self.values == other.values
        )

    @property
    def write_fraction(self) -> float:
        """Observed fraction of writes (the paper's ``w``)."""
        if not self.ops:
            return 0.0
        return sum(self.ops) / len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledTrace(n_references={len(self)}, "
            f"n_nodes={self.n_nodes}, "
            f"block_size_words={self.block_size_words})"
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "CompiledTrace":
        """Compile an in-memory :class:`Trace` (see ``Trace.compile``)."""
        nodes = array("q")
        ops = array("q")
        blocks = array("q")
        offsets = array("q")
        values = array("q")
        for ref in trace.references:
            nodes.append(ref.node)
            ops.append(_WRITE if ref.op is Op.WRITE else _READ)
            blocks.append(ref.address.block)
            offsets.append(ref.address.offset)
            values.append(ref.value)
        return cls(
            nodes,
            ops,
            blocks,
            offsets,
            values,
            trace.n_nodes,
            trace.block_size_words,
            # A constructed Trace already validated itself.
            validate=False,
        )

    def to_trace(self) -> Trace:
        """The equivalent reference-list :class:`Trace` (lossless)."""
        return Trace(
            list(self), self.n_nodes, self.block_size_words
        )


# ----------------------------------------------------------------------
# Builders: how the workload generators emit either form
# ----------------------------------------------------------------------


class CompiledTraceBuilder:
    """Accumulates references straight into columns (no ``Reference``)."""

    __slots__ = (
        "n_nodes",
        "block_size_words",
        "_nodes",
        "_ops",
        "_blocks",
        "_offsets",
        "_values",
    )

    def __init__(self, n_nodes: int, block_size_words: int) -> None:
        self.n_nodes = n_nodes
        self.block_size_words = block_size_words
        self._nodes = array("q")
        self._ops = array("q")
        self._blocks = array("q")
        self._offsets = array("q")
        self._values = array("q")

    def read(self, node: int, block: int, offset: int) -> None:
        self._nodes.append(node)
        self._ops.append(_READ)
        self._blocks.append(block)
        self._offsets.append(offset)
        self._values.append(0)

    def write(self, node: int, block: int, offset: int, value: int) -> None:
        self._nodes.append(node)
        self._ops.append(_WRITE)
        self._blocks.append(block)
        self._offsets.append(offset)
        self._values.append(value)

    def build(self) -> CompiledTrace:
        return CompiledTrace(
            self._nodes,
            self._ops,
            self._blocks,
            self._offsets,
            self._values,
            self.n_nodes,
            self.block_size_words,
        )


class ReferenceTraceBuilder:
    """Accumulates :class:`Reference` objects (the classic ``Trace``)."""

    __slots__ = ("n_nodes", "block_size_words", "_references")

    def __init__(self, n_nodes: int, block_size_words: int) -> None:
        self.n_nodes = n_nodes
        self.block_size_words = block_size_words
        self._references: list[Reference] = []

    def read(self, node: int, block: int, offset: int) -> None:
        self._references.append(
            Reference(node, Op.READ, Address(block, offset))
        )

    def write(self, node: int, block: int, offset: int, value: int) -> None:
        self._references.append(
            Reference(node, Op.WRITE, Address(block, offset), value)
        )

    def build(self) -> Trace:
        return Trace(self._references, self.n_nodes, self.block_size_words)


def trace_builder(
    n_nodes: int, block_size_words: int, *, compiled: bool
) -> CompiledTraceBuilder | ReferenceTraceBuilder:
    """The builder a generator should emit into for the requested form.

    Both builders expose the same ``read(node, block, offset)`` /
    ``write(node, block, offset, value)`` surface, so a generator's RNG
    draw order (and therefore its output stream) is identical whichever
    form it targets.
    """
    if compiled:
        return CompiledTraceBuilder(n_nodes, block_size_words)
    return ReferenceTraceBuilder(n_nodes, block_size_words)


# ----------------------------------------------------------------------
# Text format (same on-disk format as repro.sim.trace)
# ----------------------------------------------------------------------


def parse_compiled_trace(stream: Iterable[str]) -> CompiledTrace:
    """Read the v1 text format straight into columns."""
    lines = iter(stream)
    try:
        header = next(lines)
    except StopIteration:
        raise TraceError("empty trace file") from None
    n_nodes, block_size = _parse_header(header)
    nodes = array("q")
    ops = array("q")
    blocks = array("q")
    offsets = array("q")
    values = array("q")
    for line_no, line in enumerate(lines, start=2):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) != 4:
            raise TraceError(
                f"line {line_no}: expected 'node op block:offset value', "
                f"got {text!r}"
            )
        node_text, op_text, addr_text, value_text = parts
        if op_text == "W":
            op = _WRITE
        elif op_text == "R":
            op = _READ
        else:
            raise TraceError(
                f"line {line_no}: unknown operation {op_text!r}"
            )
        try:
            block_text, offset_text = addr_text.split(":")
            nodes.append(int(node_text))
            blocks.append(int(block_text))
            offsets.append(int(offset_text))
            values.append(int(value_text))
        except ValueError:
            raise TraceError(
                f"line {line_no}: malformed fields in {text!r}"
            ) from None
        ops.append(op)
    return CompiledTrace(nodes, ops, blocks, offsets, values, n_nodes, block_size)


def dump_compiled_trace(trace: CompiledTrace, stream: io.TextIOBase) -> None:
    """Write ``trace`` to an open text stream (v1 format)."""
    stream.write(
        f"# repro-trace v1 n_nodes={trace.n_nodes} "
        f"block_size={trace.block_size_words}\n"
    )
    for node, op, block, offset, value in zip(
        trace.nodes, trace.ops, trace.blocks, trace.offsets, trace.values
    ):
        stream.write(
            f"{node} {'W' if op else 'R'} {block}:{offset} {value}\n"
        )


def load_compiled_trace(path: str | Path) -> CompiledTrace:
    """Read a trace from ``path`` directly into compiled form."""
    with open(path, "r", encoding="ascii") as stream:
        return parse_compiled_trace(stream)


def save_compiled_trace(trace: CompiledTrace, path: str | Path) -> None:
    """Write a compiled trace to ``path`` (readable by both loaders)."""
    with open(path, "w", encoding="ascii") as stream:
        dump_compiled_trace(trace, stream)
