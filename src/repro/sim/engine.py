"""The trace-driven simulation loop, with built-in verification.

:func:`run_trace` feeds a reference stream to a protocol and (by default)
*verifies coherence while doing so*: a shadow memory records the globally
most recent write to every word, every read's returned value is compared
against it, and the protocol's structural invariants are re-checked.  A
protocol bug therefore surfaces at the first reference it corrupts, with
the offending reference in the exception message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import CoherenceError, TraceError
from repro.sim.ctrace import CompiledTrace
from repro.sim.stats import Stats
from repro.types import Address, Reference

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.protocol.base import CoherenceProtocol


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one trace run."""

    protocol_name: str
    n_references: int
    n_reads: int
    n_writes: int
    stats: Stats
    network_total_bits: int
    network_bits_by_level: tuple[int, ...]
    verified: bool

    @property
    def cost_per_reference(self) -> float:
        """Mean communication cost per reference (the §4 metric)."""
        if self.n_references == 0:
            return 0.0
        return self.network_total_bits / self.n_references

    @property
    def write_fraction(self) -> float:
        if self.n_references == 0:
            return 0.0
        return self.n_writes / self.n_references

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every field.

        The result round-trips through :meth:`from_dict`, so reports can
        cross process boundaries (the :mod:`repro.runner` workers) and land
        in result caches and journals as plain JSON.
        """
        return {
            "protocol_name": self.protocol_name,
            "n_references": self.n_references,
            "n_reads": self.n_reads,
            "n_writes": self.n_writes,
            "stats": self.stats.to_dict(),
            "network_total_bits": self.network_total_bits,
            "network_bits_by_level": list(self.network_bits_by_level),
            "verified": self.verified,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationReport":
        """Rebuild a report from a :meth:`to_dict` snapshot."""
        return cls(
            protocol_name=data["protocol_name"],
            n_references=data["n_references"],
            n_reads=data["n_reads"],
            n_writes=data["n_writes"],
            stats=Stats.from_dict(data["stats"]),
            network_total_bits=data["network_total_bits"],
            network_bits_by_level=tuple(data["network_bits_by_level"]),
            verified=data["verified"],
        )

    def summary(self) -> str:
        """A one-paragraph human-readable digest."""
        lines = [
            f"protocol          : {self.protocol_name}",
            f"references        : {self.n_references} "
            f"({self.n_reads} reads / {self.n_writes} writes)",
            f"network traffic   : {self.network_total_bits} bits",
            f"cost per reference: {self.cost_per_reference:.2f} bits",
            f"verified          : {self.verified}",
        ]
        events = self.stats.events
        if events:
            interesting = ", ".join(
                f"{name}={count}" for name, count in sorted(events.items())
            )
            lines.append(f"events            : {interesting}")
        return "\n".join(lines)


def run_trace(
    protocol: "CoherenceProtocol",
    trace: "Iterable[Reference] | CompiledTrace",
    *,
    verify: bool = True,
    check_invariants_every: int | None = None,
    timer=None,
    recorder=None,
) -> SimulationReport:
    """Run ``trace`` through ``protocol`` and report traffic and events.

    ``trace`` is either an iterable of :class:`~repro.types.Reference`
    items (a :class:`~repro.sim.trace.Trace`, a list, a generator) or a
    columnar :class:`~repro.sim.ctrace.CompiledTrace`.  A compiled trace
    replays through a loop that iterates its columns directly -- no
    ``Reference`` is ever constructed -- and, when every per-reference
    check is off (``verify=False``, invariant stride ``0``, no recorder)
    and the protocol offers one, through its stable-state fast-path
    table (:meth:`~repro.protocol.base.CoherenceProtocol.fastpath`).
    Both routes are bit-identical to the reference-by-reference loop;
    see docs/PERF.md.

    Two independent checks are controlled by two independent knobs:

    * ``verify`` turns *value* verification on or off: every read is
      compared against a shadow memory of the most recent writes;
    * ``check_invariants_every`` sets the stride of *structural* invariant
      re-checks (single owner, present-vector accuracy).  ``0`` means
      never; ``None`` (the default) derives the stride from ``verify`` --
      every reference while verifying, never otherwise.

    The knobs compose; the three non-default combinations are:

    * ``verify=True, check_invariants_every=0`` -- value checks on every
      read, structural invariants never re-checked (useful when a test
      drives a protocol through states whose invariants it checks itself);
    * ``verify=False, check_invariants_every=k`` -- no value checks, but
      invariants re-checked every ``k`` references (cheap structural
      confidence on bulk sweeps);
    * ``verify=True, check_invariants_every=k`` -- both, with the
      invariant stride relaxed to ``k``.

    Violations of either check raise
    :class:`~repro.errors.CoherenceError`.

    The network's traffic counters are reset at the start, so the report's
    network totals are attributable to this run alone.

    ``timer``, if given, is any object with a ``lap(name)`` method (e.g.
    :class:`repro.perf.timer.PhaseTimer`); it receives ``"reset"``,
    ``"replay"`` and ``"report"`` laps around the run's three phases.  The
    per-reference loop is never instrumented, so timing is free when no
    timer is passed and coarse-grained when one is.

    ``recorder``, if given, is a
    :class:`~repro.obs.recorder.TraceRecorder`: it is attached to the
    protocol for the duration of the run (via
    :func:`repro.obs.hooks.attach_recorder`), every reference becomes a
    span enclosing the protocol messages it caused, and the network's
    route-plan cache statistics land in the recorder's gauges at the
    end.  The default ``None`` leaves the loop exactly as it was --
    no per-reference branch, no allocation.
    """
    system = protocol.system
    system.reset_traffic()
    if recorder is not None:
        from repro.obs.hooks import attach_recorder

        attach_recorder(protocol, recorder)
    if timer is not None:
        timer.lap("reset")
    if check_invariants_every is None:
        check_invariants_every = 1 if verify else 0
    fast = None
    if (
        isinstance(trace, CompiledTrace)
        and not verify
        and not check_invariants_every
        and recorder is None
    ):
        fast = protocol.fastpath()
    if fast is not None:
        kernel = protocol.batched_kernel()
        if kernel is not None:
            n_reads, n_writes = kernel.replay(trace)
        else:
            n_reads, n_writes = fast.replay(trace)
        n_refs = n_reads + n_writes
    elif isinstance(trace, CompiledTrace):
        n_refs, n_reads, n_writes = _replay_columns(
            protocol,
            trace,
            verify=verify,
            check_invariants_every=check_invariants_every,
            recorder=recorder,
        )
    else:
        n_refs, n_reads, n_writes = _replay_references(
            protocol,
            trace,
            verify=verify,
            check_invariants_every=check_invariants_every,
            recorder=recorder,
        )
    # Final structural check -- unless the loop's last reference already
    # ran it (the stride divides the trace length exactly).  An empty
    # trace still gets its one check.
    if check_invariants_every and (
        n_refs == 0 or n_refs % check_invariants_every != 0
    ):
        protocol.check_invariants()
    if timer is not None:
        timer.lap("replay")
    if recorder is not None:
        plan_stats = system.route_plan_stats()
        if plan_stats is not None:
            for key, value in sorted(plan_stats.items()):
                recorder.metrics.set_gauge(f"route_plans_{key}", value)
    report = SimulationReport(
        protocol_name=protocol.name,
        n_references=n_refs,
        n_reads=n_reads,
        n_writes=n_writes,
        stats=protocol.stats,
        network_total_bits=system.network.total_bits,
        network_bits_by_level=tuple(system.network.bits_by_level()),
        verified=bool(verify),
    )
    if timer is not None:
        timer.lap("report")
    return report


def _replay_references(
    protocol: "CoherenceProtocol",
    trace: Iterable[Reference],
    *,
    verify: bool,
    check_invariants_every: int,
    recorder,
) -> tuple[int, int, int]:
    """The classic loop over :class:`Reference` items."""
    n_nodes = protocol.system.n_nodes
    shadow: dict[tuple[int, int], int] = {}
    n_refs = n_reads = n_writes = 0
    for index, ref in enumerate(trace):
        if not 0 <= ref.node < n_nodes:
            raise TraceError(
                f"reference {index}: node {ref.node} outside this "
                f"{n_nodes}-node system"
            )
        n_refs += 1
        if recorder is not None:
            recorder.begin_reference(
                index,
                ref.node,
                "write" if ref.is_write else "read",
                ref.address.block,
                ref.address.offset,
            )
        if ref.is_write:
            n_writes += 1
            protocol.write(ref.node, ref.address, ref.value)
            if verify:
                shadow[ref.address] = ref.value
        else:
            n_reads += 1
            observed = protocol.read(ref.node, ref.address)
            if verify:
                expected = shadow.get(ref.address, 0)
                if observed != expected:
                    raise CoherenceError(
                        f"reference {index}: node {ref.node} read "
                        f"{observed} from {ref.address}, but the most "
                        f"recent write stored {expected}",
                        block=ref.address.block,
                        node=ref.node,
                        detail=f"read {observed}, expected {expected}",
                    )
        if recorder is not None:
            recorder.end_reference()
        if check_invariants_every and (index + 1) % check_invariants_every == 0:
            protocol.check_invariants()
    return n_refs, n_reads, n_writes


def _replay_columns(
    protocol: "CoherenceProtocol",
    trace: CompiledTrace,
    *,
    verify: bool,
    check_invariants_every: int,
    recorder,
) -> tuple[int, int, int]:
    """Column iteration for :class:`CompiledTrace` -- no ``Reference``.

    Used whenever a compiled trace replays with verification, an
    invariant stride, a recorder, or a protocol without a fast path;
    observable behaviour (shadow checks, recorder spans, error messages)
    matches :func:`_replay_references` exactly.
    """
    n_nodes = protocol.system.n_nodes
    shadow: dict[tuple[int, int], int] = {}
    n_refs = n_reads = n_writes = 0
    for index, (node, op, block, offset, value) in enumerate(
        zip(
            trace.nodes, trace.ops, trace.blocks, trace.offsets, trace.values
        )
    ):
        if not 0 <= node < n_nodes:
            raise TraceError(
                f"reference {index}: node {node} outside this "
                f"{n_nodes}-node system"
            )
        n_refs += 1
        if recorder is not None:
            recorder.begin_reference(
                index, node, "write" if op else "read", block, offset
            )
        address = Address(block, offset)
        if op:
            n_writes += 1
            protocol.write(node, address, value)
            if verify:
                shadow[address] = value
        else:
            n_reads += 1
            observed = protocol.read(node, address)
            if verify:
                expected = shadow.get(address, 0)
                if observed != expected:
                    raise CoherenceError(
                        f"reference {index}: node {node} read "
                        f"{observed} from {address}, but the most "
                        f"recent write stored {expected}",
                        block=block,
                        node=node,
                        detail=f"read {observed}, expected {expected}",
                    )
        if recorder is not None:
            recorder.end_reference()
        if check_invariants_every and (index + 1) % check_invariants_every == 0:
            protocol.check_invariants()
    return n_refs, n_reads, n_writes
