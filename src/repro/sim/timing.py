"""Store-and-forward timing: from link loads to completion times.

The paper's metric (eq. 1) is traffic; this extension asks the follow-up
question its §1 motivation implies: *how long does the delivery take on a
blocking fabric?*  The model is deliberately simple and explicit:

* a link moves one bit per cycle (``bandwidth`` scales this) and serves
  one transfer at a time, first-come-first-served;
* store-and-forward: a transfer may start on a link only after its
  *parent* transfer (previous hop, or the branch it split from -- the
  ``parent`` field of :class:`~repro.network.link.LinkLoad`) has fully
  arrived;
* transfers of independent messages compete for links.

Under this model scheme 1's repeated unicasts serialise on the source's
first link (``n`` block transfers back to back) while scheme 2's tree
crosses it once -- the latency counterpart of the eq. 2 / eq. 3 traffic
comparison, measured by :func:`makespan`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.network.link import LinkLoad


@dataclass(frozen=True)
class ScheduledTransfer:
    """One link load with its computed start and finish cycles."""

    load: LinkLoad
    start: int
    finish: int


@dataclass(frozen=True)
class TimingReport:
    """Outcome of scheduling a batch of operations."""

    transfers: tuple[ScheduledTransfer, ...]
    makespan: int

    def busiest_link_busy_time(self) -> int:
        """Cycles the most-occupied link spent transferring."""
        busy: dict[tuple[int, int], int] = {}
        for transfer in self.transfers:
            key = transfer.load.key
            busy[key] = busy.get(key, 0) + (
                transfer.finish - transfer.start
            )
        return max(busy.values(), default=0)

    def link_utilisation(self) -> float:
        """Mean busy fraction over links that carried anything."""
        if not self.transfers or self.makespan == 0:
            return 0.0
        busy: dict[tuple[int, int], int] = {}
        for transfer in self.transfers:
            key = transfer.load.key
            busy[key] = busy.get(key, 0) + (
                transfer.finish - transfer.start
            )
        return sum(busy.values()) / (len(busy) * self.makespan)


def _duration(bits: int, bandwidth: int) -> int:
    # A zero-bit transfer (pure tag already stripped) still occupies the
    # link for one cycle: something physical crosses it.
    return max(1, -(-bits // bandwidth))


def schedule(
    operations: Sequence[Sequence[LinkLoad]],
    *,
    bandwidth: int = 1,
) -> TimingReport:
    """Schedule one or more operations' load lists onto the links.

    Each element of ``operations`` is the ``loads`` tuple of one network
    operation (a :class:`~repro.network.multicast.MulticastResult` or
    unicast result); ``parent`` indices are interpreted within each
    operation.  Returns every transfer with start/finish cycles plus the
    overall makespan.
    """
    if bandwidth <= 0:
        raise ConfigurationError(
            f"bandwidth must be positive, got {bandwidth}"
        )
    # Flatten into nodes with global ids and resolved dependencies.
    ready: list[tuple[int, int, int]] = []  # (ready_time, global_id, _)
    dependents: dict[int, list[int]] = {}
    pending_parents: dict[int, int] = {}
    all_loads: list[LinkLoad] = []
    for operation in operations:
        base = len(all_loads)
        for local_index, load in enumerate(operation):
            global_id = base + local_index
            all_loads.append(load)
            if load.parent is None:
                pending_parents[global_id] = 0
            else:
                if not 0 <= load.parent < len(operation):
                    raise ConfigurationError(
                        f"load {local_index} has parent {load.parent} "
                        f"outside its operation"
                    )
                pending_parents[global_id] = 1
                dependents.setdefault(base + load.parent, []).append(
                    global_id
                )

    ready_time: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for global_id, missing in pending_parents.items():
        if missing == 0:
            ready_time[global_id] = 0
            heapq.heappush(heap, (0, global_id))

    link_free: dict[tuple[int, int], int] = {}
    finished: dict[int, int] = {}
    transfers: list[ScheduledTransfer | None] = [None] * len(all_loads)
    while heap:
        ready_at, global_id = heapq.heappop(heap)
        if ready_at != ready_time.get(global_id):
            continue  # stale heap entry
        load = all_loads[global_id]
        start = max(ready_at, link_free.get(load.key, 0))
        finish = start + _duration(load.bits, bandwidth)
        link_free[load.key] = finish
        finished[global_id] = finish
        transfers[global_id] = ScheduledTransfer(load, start, finish)
        for child in dependents.get(global_id, ()):
            pending_parents[child] -= 1
            if pending_parents[child] == 0:
                ready_time[child] = finish
                heapq.heappush(heap, (finish, child))

    if len(finished) != len(all_loads):
        raise ConfigurationError(
            "dependency cycle or orphan loads in the operation batch"
        )
    done = [transfer for transfer in transfers if transfer is not None]
    return TimingReport(
        transfers=tuple(done),
        makespan=max((t.finish for t in done), default=0),
    )


def makespan(
    operations: Iterable[Sequence[LinkLoad]], *, bandwidth: int = 1
) -> int:
    """Completion time (cycles) of a batch of operations."""
    return schedule(list(operations), bandwidth=bandwidth).makespan
