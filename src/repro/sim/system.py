"""The simulated multiprocessor: processors, caches, memories, network.

One :class:`System` is the Figure 1 machine: ``N`` processors with private
caches and ``N`` interleaved memory modules on the two sides of an
``N x N`` omega network.  The system owns all components and their traffic
counters; a coherence protocol (see :mod:`repro.protocol`) drives them.

Construction is deliberately all-in-one-config so experiments are
reproducible from a single frozen value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.cache import Cache
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.memory.module import MemoryModule
from repro.network.multicast import Multicaster, MulticastScheme
from repro.network.topology import OmegaNetwork
from repro.protocol.messages import MessageCosts
from repro.types import Address, BlockId, NodeId, is_power_of_two


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`System`.

    Parameters mirror the paper's: ``n_nodes`` is the cache count ``N``
    (a power of two, >= 2); ``block_size_words`` the block size; the cache
    geometry and replacement policy shape the replacement traffic of §2.2
    item 5; ``costs`` sets message payload sizes; ``multicast_scheme``
    selects among the §3 schemes for every one-to-many protocol action.
    """

    n_nodes: int
    block_size_words: int = 4
    cache_entries: int = 16
    associativity: int | None = None
    replacement: str = "lru"
    costs: MessageCosts = field(default_factory=MessageCosts)
    multicast_scheme: MulticastScheme = MulticastScheme.COMBINED
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or not is_power_of_two(self.n_nodes):
            raise ConfigurationError(
                f"n_nodes must be a power of two >= 2, got {self.n_nodes}"
            )
        if self.block_size_words <= 0:
            raise ConfigurationError(
                f"block_size_words must be positive, "
                f"got {self.block_size_words}"
            )
        if self.cache_entries <= 0:
            raise ConfigurationError(
                f"cache_entries must be positive, got {self.cache_entries}"
            )

    def with_scheme(self, scheme: MulticastScheme) -> "SystemConfig":
        """This config with a different multicast scheme (for ablations)."""
        return replace(self, multicast_scheme=scheme)


class System:
    """A fully built multiprocessor ready for a protocol to drive.

    ``multicaster_factory`` optionally replaces the default
    :class:`~repro.network.multicast.Multicaster` with any object offering
    the same ``send`` / ``send_one`` / ``send_payload`` /
    ``send_payload_one`` interface built over this system's network --
    e.g. the §5 register-driven selector
    (:class:`~repro.network.selector.RegisterMulticaster`).

    ``fault_plan`` optionally subjects the network to a
    :class:`~repro.faults.plan.FaultPlan`: a non-empty plan builds a
    :class:`~repro.faults.injector.FaultInjector` and attaches it to both
    the system and the network before the multicaster is created.  An
    empty (or absent) plan builds nothing -- ``fault_injector`` stays
    ``None`` and the system is bit-identical to one constructed without
    the parameter.
    """

    def __init__(
        self,
        config: SystemConfig,
        *,
        multicaster_factory=None,
        fault_plan=None,
    ) -> None:
        self.config = config
        self.network = OmegaNetwork(config.n_nodes)
        self.fault_injector = None
        if fault_plan is not None and not fault_plan.is_empty:
            self.fault_injector = FaultInjector(self.network, fault_plan)
            self.network.fault_injector = self.fault_injector
        if multicaster_factory is None:
            self.multicaster = Multicaster(
                self.network, config.multicast_scheme
            )
        else:
            self.multicaster = multicaster_factory(self.network)
        self.caches: list[Cache] = [
            Cache(
                node,
                config.cache_entries,
                config.block_size_words,
                associativity=config.associativity,
                policy=config.replacement,
                seed=config.seed + node,
            )
            for node in range(config.n_nodes)
        ]
        self.memories: list[MemoryModule] = [
            MemoryModule(node, config.n_nodes, config.block_size_words)
            for node in range(config.n_nodes)
        ]

    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def costs(self) -> MessageCosts:
        return self.config.costs

    def home(self, block: BlockId) -> NodeId:
        """The memory module (and its port) block ``block`` is homed at."""
        return block % self.config.n_nodes

    def memory_for(self, block: BlockId) -> MemoryModule:
        """The home module of ``block``."""
        return self.memories[self.home(block)]

    def check_address(self, address: Address) -> None:
        """Validate an address against the block geometry."""
        if address.block < 0:
            raise ConfigurationError(f"negative block id {address.block}")
        if not 0 <= address.offset < self.config.block_size_words:
            raise ConfigurationError(
                f"offset {address.offset} outside block of "
                f"{self.config.block_size_words} words"
            )

    def reset_traffic(self) -> None:
        """Zero the network counters (protocol stats are separate)."""
        self.network.reset_traffic()

    def route_plan_stats(self) -> dict[str, int | float] | None:
        """The network's route-plan cache statistics (hits, misses, size).

        Returns ``None`` when plan memoisation is disabled
        (``network.route_plans = None``, the perf harness's cold path).
        """
        cache = self.network.route_plans
        if cache is None:
            return None
        return cache.stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"System({self.config!r})"
