"""Human-readable snapshots of the machine's coherence state.

Figure 2 of the paper is exactly this: one block's state field at every
cache plus the block store entry, drawn out.  :func:`block_snapshot`
produces that picture for any live system, and :func:`system_snapshot`
for every block in play -- the first thing to reach for when a protocol
trace does something surprising.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.system import System
from repro.types import BlockId, NodeId


@dataclass(frozen=True)
class BlockSnapshot:
    """One block's full coherence picture."""

    block: BlockId
    recorded_owner: NodeId | None
    rows: tuple[tuple[NodeId, str, str, str, str, str], ...]

    def render(self) -> str:
        # Imported lazily: repro.sim must not depend on the analysis
        # layer at import time (it sits below it).
        from repro.analysis.report import render_table

        owner_text = (
            f"owner={self.recorded_owner}"
            if self.recorded_owner is not None
            else "uncached"
        )
        return render_table(
            ("cache", "state", "mode", "present", "OWNER", "data"),
            self.rows,
            title=f"block {self.block} (block store: {owner_text})",
        )


def block_snapshot(system: System, block: BlockId) -> BlockSnapshot:
    """The Figure 2 picture for ``block``: every cache's view of it."""
    rows = []
    for cache in system.caches:
        entry = cache.find(block)
        if entry is None:
            continue
        field = entry.state_field
        rows.append(
            (
                cache.node_id,
                str(entry.state(cache.node_id)),
                str(field.mode) if field.owned else "-",
                (
                    ",".join(str(n) for n in sorted(field.present))
                    if field.owned
                    else "-"
                ),
                str(field.owner) if field.owner is not None else "-",
                str(entry.data) if field.valid else "-",
            )
        )
    return BlockSnapshot(
        block=block,
        recorded_owner=system.memory_for(block).block_store.owner_of(
            block
        ),
        rows=tuple(rows),
    )


def blocks_in_play(system: System) -> list[BlockId]:
    """Every block any cache or block store currently knows about."""
    blocks: set[BlockId] = set()
    for cache in system.caches:
        blocks.update(cache.resident_blocks())
    for memory in system.memories:
        blocks.update(memory.block_store.valid_blocks())
    return sorted(blocks)


def system_snapshot(system: System) -> str:
    """Snapshots of every block in play, concatenated."""
    parts = [
        block_snapshot(system, block).render()
        for block in blocks_in_play(system)
    ]
    if not parts:
        return "(no blocks cached)"
    return "\n\n".join(parts)
