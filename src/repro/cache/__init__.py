"""Private-cache substrate: entries, state fields, tag store, replacement.

The coherence protocols of :mod:`repro.protocol` are built on top of this
package.  The central object is the per-entry *state field* of §2.1 -- the
paper's key idea is that this field (valid / ownership / modified /
distributed-write bits, the present-flag vector and the owner id) lives in
the caches rather than in a memory-side directory.
"""

from repro.cache.cache import Cache
from repro.cache.entry import CacheEntry
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.state import CacheState, Mode, StateField

__all__ = [
    "Cache",
    "CacheEntry",
    "CacheState",
    "FifoPolicy",
    "LruPolicy",
    "Mode",
    "RandomPolicy",
    "ReplacementPolicy",
    "StateField",
    "make_policy",
]
