"""Replacement policies for the set-associative cache.

Block replacement triggers real protocol work in this system (§2.2 item 5:
write-backs, ownership hand-off, present-flag clearing), so which entry gets
evicted is experimentally interesting.  Policies are deliberately tiny state
machines over ``(set_index, way)`` pairs; the cache calls :meth:`touch` on
every access and :meth:`choose_victim` when it needs a way.
"""

from __future__ import annotations

import abc
import random
from collections import OrderedDict

from repro.errors import ConfigurationError


class ReplacementPolicy(abc.ABC):
    """Chooses which way of a set to evict."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        if n_sets <= 0 or n_ways <= 0:
            raise ConfigurationError(
                f"need positive set/way counts, got {n_sets}x{n_ways}"
            )
        self.n_sets = n_sets
        self.n_ways = n_ways

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record an access to ``(set_index, way)``."""

    @abc.abstractmethod
    def choose_victim(self, set_index: int) -> int:
        """Way to evict from ``set_index`` when every way is occupied."""

    def forget(self, set_index: int, way: int) -> None:
        """Entry was cleared; drop any recency state for it (optional)."""

    def _check(self, set_index: int, way: int) -> None:
        if not 0 <= set_index < self.n_sets:
            raise ConfigurationError(f"set index {set_index} out of range")
        if not 0 <= way < self.n_ways:
            raise ConfigurationError(f"way {way} out of range")


class LruPolicy(ReplacementPolicy):
    """Evict the least recently used way."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        # Per set: ways ordered oldest-first.  Every way starts present so
        # never-touched ways are evicted before touched ones.
        self._order: list[OrderedDict[int, None]] = [
            OrderedDict((way, None) for way in range(n_ways))
            for _ in range(n_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        order = self._order[set_index]
        order.move_to_end(way)

    def choose_victim(self, set_index: int) -> int:
        self._check(set_index, 0)
        return next(iter(self._order[set_index]))

    def forget(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        # A cleared entry becomes the coldest way again.
        self._order[set_index].move_to_end(way, last=False)


class FifoPolicy(ReplacementPolicy):
    """Evict ways round-robin in allocation order."""

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._next: list[int] = [0] * n_sets

    def touch(self, set_index: int, way: int) -> None:
        self._check(set_index, way)

    def choose_victim(self, set_index: int) -> int:
        self._check(set_index, 0)
        victim = self._next[set_index]
        self._next[set_index] = (victim + 1) % self.n_ways
        return victim


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (seeded for reproducibility)."""

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        self._check(set_index, way)

    def choose_victim(self, set_index: int) -> int:
        self._check(set_index, 0)
        return self._rng.randrange(self.n_ways)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(
    name: str, n_sets: int, n_ways: int, seed: int = 0
) -> ReplacementPolicy:
    """Build a policy by name (``"lru"``, ``"fifo"`` or ``"random"``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(n_sets, n_ways, seed=seed)
    return cls(n_sets, n_ways)
