"""The per-processor private cache: a set-associative tag/state/data table.

The cache is deliberately *mechanism only*: it finds entries, picks victims
and installs tags, but takes no protocol action.  The coherence protocols
drive it through a two-phase allocation so they can run the paper's
replacement actions (§2.2 item 5) between choosing a victim and overwriting
it:

>>> slot = cache.slot_for(block)          # where the block would live
>>> if slot.needs_eviction(block): ...    # protocol replaces slot.entry
>>> entry = cache.install(slot, block)    # now overwrite the slot
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.entry import CacheEntry
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.errors import ConfigurationError, ProtocolError
from repro.types import BlockId, NodeId


@dataclass(frozen=True)
class Slot:
    """A concrete location ``(set_index, way)`` within a cache."""

    set_index: int
    way: int
    entry: CacheEntry

    def needs_eviction(self, block: BlockId) -> bool:
        """True when installing ``block`` would displace other state."""
        return self.entry.occupied and self.entry.tag != block


class Cache:
    """One private cache attached to processor/port ``node_id``.

    Parameters
    ----------
    node_id:
        The cache's network port (equals its processor id).
    n_entries:
        Total cache entries (blocks the cache can hold).
    block_size_words:
        Words per block; sizes the data portion of each entry.
    associativity:
        Ways per set; ``None`` means fully associative.
    policy / seed:
        Replacement policy name (``"lru"``, ``"fifo"``, ``"random"``) and
        RNG seed for the random policy.
    """

    def __init__(
        self,
        node_id: NodeId,
        n_entries: int,
        block_size_words: int,
        *,
        associativity: int | None = None,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if n_entries <= 0:
            raise ConfigurationError(
                f"cache needs at least one entry, got {n_entries}"
            )
        if block_size_words <= 0:
            raise ConfigurationError(
                f"block size must be positive, got {block_size_words}"
            )
        n_ways = n_entries if associativity is None else associativity
        if n_ways <= 0 or n_entries % n_ways != 0:
            raise ConfigurationError(
                f"associativity {n_ways} must evenly divide "
                f"{n_entries} entries"
            )
        self.node_id = node_id
        self.n_entries = n_entries
        self.block_size_words = block_size_words
        self.n_ways = n_ways
        self.n_sets = n_entries // n_ways
        self._sets: list[list[CacheEntry]] = [
            [CacheEntry() for _ in range(n_ways)] for _ in range(self.n_sets)
        ]
        # Tag index: block -> (set_index, way) for every tagged entry.
        # Tags are only ever written by install() and drop(), which keep
        # this exact; every lookup below is O(1) instead of a way scan.
        self._index: dict[BlockId, tuple[int, int]] = {}
        self.policy: ReplacementPolicy = make_policy(
            policy, self.n_sets, n_ways, seed=seed
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def set_index(self, block: BlockId) -> int:
        """The set ``block`` maps to."""
        return block % self.n_sets

    def find(self, block: BlockId) -> CacheEntry | None:
        """The entry tagged with ``block`` (valid *or* invalid), if any."""
        location = self._index.get(block)
        if location is None:
            return None
        return self._sets[location[0]][location[1]]

    def locate(self, block: BlockId) -> tuple[int, int] | None:
        """The ``(set_index, way)`` of ``block``'s entry, if tagged."""
        return self._index.get(block)

    def slot_for(self, block: BlockId) -> Slot:
        """Where ``block`` would live: its current slot, a free way, or the
        replacement policy's victim (in that order of preference)."""
        set_index = self.set_index(block)
        ways = self._sets[set_index]
        location = self._index.get(block)
        if location is not None:
            return Slot(set_index, location[1], ways[location[1]])
        for way, entry in enumerate(ways):
            if not entry.occupied:
                return Slot(set_index, way, entry)
        way = self.policy.choose_victim(set_index)
        return Slot(set_index, way, ways[way])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def install(self, slot: Slot, block: BlockId) -> CacheEntry:
        """Claim ``slot`` for ``block``: clear it, tag it, mark it used.

        The caller must have finished any replacement protocol on the
        previous occupant; installing over live *owned* state is a protocol
        bug and raises.
        """
        entry = slot.entry
        if entry.occupied and entry.tag != block and entry.state_field.owned:
            raise ProtocolError(
                f"cache {self.node_id}: installing block {block} over "
                f"unreplaced owned block {entry.tag}"
            )
        if entry.tag is not None:
            del self._index[entry.tag]
        entry.clear()
        entry.tag = block
        entry.data = [0] * self.block_size_words
        self._index[block] = (slot.set_index, slot.way)
        self.policy.touch(slot.set_index, slot.way)
        return entry

    def touch(self, block: BlockId) -> None:
        """Refresh replacement recency for a hit on ``block``."""
        location = self._index.get(block)
        if location is None:
            raise ProtocolError(
                f"cache {self.node_id}: touch of non-resident block {block}"
            )
        self.policy.touch(location[0], location[1])

    def drop(self, block: BlockId) -> None:
        """Clear the entry tagged ``block`` (protocol already cleaned up)."""
        location = self._index.get(block)
        if location is None:
            raise ProtocolError(
                f"cache {self.node_id}: drop of non-resident block {block}"
            )
        set_index, way = location
        self._sets[set_index][way].clear()
        del self._index[block]
        self.policy.forget(set_index, way)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_entries(self):
        """Yield every entry (occupied or not), set by set."""
        for ways in self._sets:
            yield from ways

    def resident_blocks(self) -> list[BlockId]:
        """Tags of all occupied entries (valid or invalid placeholders)."""
        return [
            entry.tag
            for entry in self.iter_entries()
            if entry.tag is not None
        ]

    def occupancy(self) -> float:
        """Fraction of entries currently occupied."""
        occupied = sum(1 for entry in self.iter_entries() if entry.occupied)
        return occupied / self.n_entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cache(node_id={self.node_id}, n_entries={self.n_entries}, "
            f"ways={self.n_ways}, sets={self.n_sets})"
        )
