"""Cached-block states and the per-entry state field (§2.1, Table 1).

The paper maintains consistency of each block in one of two *operating
modes*:

* ``Mode.DISTRIBUTED_WRITE`` -- copies are allowed; the owner multicasts
  every write to the caches holding a copy;
* ``Mode.GLOBAL_READ`` -- only the owner holds a copy; other caches keep an
  invalid placeholder entry whose OWNER field lets them read single words
  directly from the owner.

A cached block is in one of six states (Table 1), *derived* from the bits of
its :class:`StateField`:

======================================  =======================================
state                                   state-field encoding (cache ``i``)
======================================  =======================================
Invalid                                 ``V = 0``
UnOwned                                 ``V = 1, O = 0``
Owned Exclusively Distributed Write     ``V = 1, O = 1, DW = 1, P = {i}``
Owned Exclusively Global Read           ``V = 1, O = 1, DW = 0, P = {i}``
Owned NonExclusively Distributed Write  ``V = 1, O = 1, DW = 1, P ⊋ {i}``
Owned NonExclusively Global Read        ``V = 1, O = 1, DW = 0, P ⊋ {i}``
======================================  =======================================

Storing the raw bits and deriving the state keeps the implementation
honest: exclusivity is not a flag someone remembered to flip, it is the
present-flag vector containing exactly the owner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.types import NodeId, ilog2


class Mode(enum.Enum):
    """Operating mode of a block (the DW bit of the state field)."""

    DISTRIBUTED_WRITE = "DW"
    GLOBAL_READ = "GR"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CacheState(enum.Enum):
    """The six states of Table 1."""

    INVALID = "Invalid"
    UNOWNED = "UnOwned"
    OWNED_EXCLUSIVE_DW = "Owned Exclusively Distributed Write"
    OWNED_EXCLUSIVE_GR = "Owned Exclusively Global Read"
    OWNED_NONEXCLUSIVE_DW = "Owned NonExclusively Distributed Write"
    OWNED_NONEXCLUSIVE_GR = "Owned NonExclusively Global Read"

    @property
    def is_valid(self) -> bool:
        return self is not CacheState.INVALID

    @property
    def is_owned(self) -> bool:
        return self in _OWNED

    @property
    def is_exclusive(self) -> bool:
        return self in (
            CacheState.OWNED_EXCLUSIVE_DW,
            CacheState.OWNED_EXCLUSIVE_GR,
        )

    @property
    def mode(self) -> Mode | None:
        """Operating mode for owned states; ``None`` otherwise."""
        if self in (
            CacheState.OWNED_EXCLUSIVE_DW,
            CacheState.OWNED_NONEXCLUSIVE_DW,
        ):
            return Mode.DISTRIBUTED_WRITE
        if self in (
            CacheState.OWNED_EXCLUSIVE_GR,
            CacheState.OWNED_NONEXCLUSIVE_GR,
        ):
            return Mode.GLOBAL_READ
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_OWNED = frozenset(
    (
        CacheState.OWNED_EXCLUSIVE_DW,
        CacheState.OWNED_EXCLUSIVE_GR,
        CacheState.OWNED_NONEXCLUSIVE_DW,
        CacheState.OWNED_NONEXCLUSIVE_GR,
    )
)


@dataclass
class StateField:
    """The per-entry state field of §2.1.

    Fields mirror the paper's bit names:

    * ``valid`` -- the V bit;
    * ``owned`` -- the O bit;
    * ``modified`` -- the M bit (copy inconsistent with memory; meaningful
      only at the owner);
    * ``distributed_write`` -- the DW bit selecting the operating mode
      (meaningful only at the owner);
    * ``present`` -- the present-flag vector ``P_1 .. P_N``, held as the set
      of cache ids whose flag is 1 (meaningful only at the owner).  In DW
      mode it marks caches *with a copy*; in GR mode it marks caches with an
      *invalid placeholder* for the block.  The owner's own flag is always
      set while owned;
    * ``owner`` -- the OWNER field (``log2 N`` bits), the cache to contact
      when this copy is not owned locally.
    """

    valid: bool = False
    owned: bool = False
    modified: bool = False
    distributed_write: bool = False
    present: set[NodeId] = field(default_factory=set)
    owner: NodeId | None = None

    @property
    def mode(self) -> Mode:
        """Operating mode encoded by the DW bit."""
        return (
            Mode.DISTRIBUTED_WRITE
            if self.distributed_write
            else Mode.GLOBAL_READ
        )

    def state(self, cache_id: NodeId) -> CacheState:
        """Derive the Table 1 state of this entry as seen by ``cache_id``."""
        if not self.valid:
            return CacheState.INVALID
        if not self.owned:
            return CacheState.UNOWNED
        if cache_id not in self.present:
            raise ProtocolError(
                f"owner {cache_id} missing from its own present vector "
                f"{sorted(self.present)}"
            )
        exclusive = self.present == {cache_id}
        if self.distributed_write:
            return (
                CacheState.OWNED_EXCLUSIVE_DW
                if exclusive
                else CacheState.OWNED_NONEXCLUSIVE_DW
            )
        return (
            CacheState.OWNED_EXCLUSIVE_GR
            if exclusive
            else CacheState.OWNED_NONEXCLUSIVE_GR
        )

    def others(self, cache_id: NodeId) -> frozenset[NodeId]:
        """Present-flagged caches other than ``cache_id``."""
        return frozenset(self.present - {cache_id})

    def copy(self) -> "StateField":
        """Independent copy (present set not shared) for state transfer."""
        return StateField(
            valid=self.valid,
            owned=self.owned,
            modified=self.modified,
            distributed_write=self.distributed_write,
            present=set(self.present),
            owner=self.owner,
        )

    @staticmethod
    def size_bits(n_caches: int) -> int:
        """Bits a hardware state field occupies for an ``N``-cache machine.

        V + O + M + DW + the ``N`` present flags + the ``log2 N``-bit OWNER
        field; the quantity behind the paper's ``O(C (N + log N))`` term.
        """
        return 4 + n_caches + ilog2(n_caches)
