"""Cache entries: tag + state field + data words (§2.1).

"Each cache contains a table consisting of a number of cache entries, each
containing a data portion, a tag field, and a state field."  The data portion
here is a list of Python ints (one per word) so the simulator can verify
coherence of actual values, not just of states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.state import CacheState, StateField
from repro.errors import ProtocolError
from repro.types import BlockId, NodeId


@dataclass
class CacheEntry:
    """One line of a cache's tag/state/data table.

    ``tag`` is ``None`` while the entry has never been used.  Note that an
    entry can be *occupied but invalid*: in global-read mode a cache keeps an
    invalid placeholder (tag set, ``V = 0``) whose OWNER field bypasses the
    memory module on the next miss.
    """

    tag: BlockId | None = None
    state_field: StateField = field(default_factory=StateField)
    data: list[int] = field(default_factory=list)

    @property
    def occupied(self) -> bool:
        """Whether the entry holds (valid or invalid) protocol state."""
        return self.tag is not None

    def state(self, cache_id: NodeId) -> CacheState:
        """Table 1 state of this entry as seen by its cache."""
        if self.tag is None:
            return CacheState.INVALID
        return self.state_field.state(cache_id)

    def read_word(self, offset: int) -> int:
        """Word at ``offset``; the entry must hold data."""
        if not 0 <= offset < len(self.data):
            raise ProtocolError(
                f"offset {offset} outside block of {len(self.data)} words "
                f"(tag={self.tag})"
            )
        return self.data[offset]

    def write_word(self, offset: int, value: int) -> None:
        """Store ``value`` at ``offset``; the entry must hold data."""
        if not 0 <= offset < len(self.data):
            raise ProtocolError(
                f"offset {offset} outside block of {len(self.data)} words "
                f"(tag={self.tag})"
            )
        self.data[offset] = value

    def clear(self) -> None:
        """Return the entry to the never-used state."""
        self.tag = None
        self.state_field = StateField()
        self.data = []
