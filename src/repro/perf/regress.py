"""The ``BENCH_perf.json`` baseline and the regression gate.

The committed baseline records, for every microbenchmark in
:mod:`repro.perf.harness`, the wall time and rate measured when the
baseline was (re)established, plus the machine-independent workload
checks (bit totals).  :func:`compare_to_baseline` then answers two
questions with different strictness:

* **checks** (bit totals, work counts) must match exactly -- they are
  machine-independent, so any difference is a correctness change, and the
  comparison fails regardless of threshold;
* **rate** may drift with the host; only a slowdown beyond ``threshold``
  (default 25%) counts as a regression.  Speedups never fail -- rerun
  with ``--write-baseline`` to ratchet.

Alongside the gate, every ``repro perf`` run appends one JSONL row to
``BENCH_history.jsonl`` (:func:`append_history`): timestamp, commit, and
per-benchmark rates.  The baseline answers "did this run regress?"; the
history answers "when did the rate move?" across runs and machines.
"""

from __future__ import annotations

import json
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.perf.harness import BenchResult

#: Repo-root baseline filename (committed; see docs/PERF.md).
DEFAULT_BASELINE = "BENCH_perf.json"

#: Repo-root append-only rate log (one JSON object per line).
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Fail when a benchmark's rate drops below ``(1 - threshold)`` times the
#: baseline rate.
DEFAULT_THRESHOLD = 0.25

_FORMAT_VERSION = 1


class PerfRegression(RuntimeError):
    """At least one benchmark regressed against the baseline."""


def results_payload(results: dict[str, BenchResult]) -> dict:
    """The JSON document written for a set of results."""
    return {
        "version": _FORMAT_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {
            name: result.to_dict() for name, result in results.items()
        },
    }


def write_baseline(
    results: dict[str, BenchResult], path: str | Path = DEFAULT_BASELINE
) -> Path:
    """Persist ``results`` as the new baseline; returns the path written."""
    path = Path(path)
    payload = results_payload(results)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _current_commit() -> str | None:
    """The checked-out git commit, or None outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def append_history(
    results: dict[str, BenchResult],
    path: str | Path = DEFAULT_HISTORY,
    *,
    timestamp: str | None = None,
    commit: str | None = None,
) -> Path:
    """Append one history row for this run; returns the path written.

    The row is a single JSON object per line (JSONL), so the file is
    append-only across runs and survives concurrent writers on different
    machines merging cleanly.  ``timestamp`` and ``commit`` default to
    now (UTC) and ``git rev-parse HEAD`` but can be injected for tests.
    """
    path = Path(path)
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    if commit is None:
        commit = _current_commit()
    row = {
        "timestamp": timestamp,
        "commit": commit,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rates": {name: result.rate for name, result in results.items()},
        "equivalent": all(
            result.equivalent for result in results.values()
        ),
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def latest_history_row(path: str | Path = DEFAULT_HISTORY) -> dict | None:
    """The most recent :func:`append_history` row, or None.

    Reads the last well-formed JSONL line of ``path``; a missing file,
    an empty file, or trailing garbage (a torn concurrent write) all
    yield None rather than an error -- history is advisory, and the
    caller (``repro perf``'s rate-delta report) must degrade to "no
    previous run" instead of failing the perf gate.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None
    for line in reversed(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            return row
    return None


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> dict:
    """Read a baseline document written by :func:`write_baseline`."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {_FORMAT_VERSION})"
        )
    return data


def compare_to_baseline(
    results: dict[str, BenchResult],
    baseline: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    check_timing: bool = True,
    subset: bool = False,
) -> list[str]:
    """Problems found comparing ``results`` to ``baseline``.

    Returns a list of human-readable regression descriptions (empty means
    pass).  ``check_timing=False`` restricts the comparison to the
    machine-independent checks -- the CI equivalence-only mode, where
    shared-runner timing noise would make a rate gate meaningless.
    ``subset=True`` drops the "in baseline but not measured" coverage
    check -- the ``repro perf --only`` mode, where missing benchmarks
    were deliberately not run; every benchmark that *was* run is still
    held to the full gate.
    """
    problems: list[str] = []
    baseline_benchmarks = baseline.get("benchmarks", {})
    for name, result in results.items():
        recorded = baseline_benchmarks.get(name)
        if recorded is None:
            problems.append(f"{name}: not present in baseline")
            continue
        if recorded.get("work") != result.work:
            problems.append(
                f"{name}: work changed "
                f"({recorded.get('work')} -> {result.work}); "
                f"rewrite the baseline"
            )
        if recorded.get("checks") != result.checks:
            problems.append(
                f"{name}: workload checks changed "
                f"({recorded.get('checks')} -> {result.checks}) -- "
                f"a correctness difference, not a timing one"
            )
        if check_timing:
            floor = recorded.get("rate", 0.0) * (1.0 - threshold)
            if result.rate < floor:
                problems.append(
                    f"{name}: {result.rate:,.0f} {result.unit}/s is more "
                    f"than {threshold:.0%} below the baseline "
                    f"{recorded.get('rate'):,.0f} {result.unit}/s"
                )
    if not subset:
        for name in baseline_benchmarks:
            if name not in results:
                problems.append(f"{name}: in baseline but not measured")
    return problems
