"""The ``BENCH_perf.json`` baseline and the regression gate.

The committed baseline records, for every microbenchmark in
:mod:`repro.perf.harness`, the wall time and rate measured when the
baseline was (re)established, plus the machine-independent workload
checks (bit totals).  :func:`compare_to_baseline` then answers two
questions with different strictness:

* **checks** (bit totals, work counts) must match exactly -- they are
  machine-independent, so any difference is a correctness change, and the
  comparison fails regardless of threshold;
* **rate** may drift with the host; only a slowdown beyond ``threshold``
  (default 25%) counts as a regression.  Speedups never fail -- rerun
  with ``--write-baseline`` to ratchet.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.perf.harness import BenchResult

#: Repo-root baseline filename (committed; see docs/PERF.md).
DEFAULT_BASELINE = "BENCH_perf.json"

#: Fail when a benchmark's rate drops below ``(1 - threshold)`` times the
#: baseline rate.
DEFAULT_THRESHOLD = 0.25

_FORMAT_VERSION = 1


class PerfRegression(RuntimeError):
    """At least one benchmark regressed against the baseline."""


def results_payload(results: dict[str, BenchResult]) -> dict:
    """The JSON document written for a set of results."""
    return {
        "version": _FORMAT_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {
            name: result.to_dict() for name, result in results.items()
        },
    }


def write_baseline(
    results: dict[str, BenchResult], path: str | Path = DEFAULT_BASELINE
) -> Path:
    """Persist ``results`` as the new baseline; returns the path written."""
    path = Path(path)
    payload = results_payload(results)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> dict:
    """Read a baseline document written by :func:`write_baseline`."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {_FORMAT_VERSION})"
        )
    return data


def compare_to_baseline(
    results: dict[str, BenchResult],
    baseline: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    check_timing: bool = True,
) -> list[str]:
    """Problems found comparing ``results`` to ``baseline``.

    Returns a list of human-readable regression descriptions (empty means
    pass).  ``check_timing=False`` restricts the comparison to the
    machine-independent checks -- the CI equivalence-only mode, where
    shared-runner timing noise would make a rate gate meaningless.
    """
    problems: list[str] = []
    baseline_benchmarks = baseline.get("benchmarks", {})
    for name, result in results.items():
        recorded = baseline_benchmarks.get(name)
        if recorded is None:
            problems.append(f"{name}: not present in baseline")
            continue
        if recorded.get("work") != result.work:
            problems.append(
                f"{name}: work changed "
                f"({recorded.get('work')} -> {result.work}); "
                f"rewrite the baseline"
            )
        if recorded.get("checks") != result.checks:
            problems.append(
                f"{name}: workload checks changed "
                f"({recorded.get('checks')} -> {result.checks}) -- "
                f"a correctness difference, not a timing one"
            )
        if check_timing:
            floor = recorded.get("rate", 0.0) * (1.0 - threshold)
            if result.rate < floor:
                problems.append(
                    f"{name}: {result.rate:,.0f} {result.unit}/s is more "
                    f"than {threshold:.0%} below the baseline "
                    f"{recorded.get('rate'):,.0f} {result.unit}/s"
                )
    for name in baseline_benchmarks:
        if name not in results:
            problems.append(f"{name}: in baseline but not measured")
    return problems
