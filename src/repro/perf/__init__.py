"""Performance measurement for the simulator itself.

The paper's experiments sweep hundreds of configurations; how fast the
simulator replays a reference trace bounds how much of the design space a
session can explore.  This package measures that speed and guards it:

* :mod:`repro.perf.timer` -- monotonic phase timers
  (:class:`~repro.perf.timer.PhaseTimer`), accepted by
  :func:`repro.sim.engine.run_trace` for coarse phase breakdowns;
* :mod:`repro.perf.harness` -- pinned-seed microbenchmarks (trace replay,
  multicast fan-out, sweep throughput), each paired with an *equivalence
  check* that replays the workload with route-plan memoisation disabled
  and asserts bit-identical results;
* :mod:`repro.perf.regress` -- reads and writes the ``BENCH_perf.json``
  baseline at the repo root and fails when a benchmark regresses beyond a
  threshold.

Run via ``repro perf`` (see :mod:`repro.cli`).
"""

from repro.perf.harness import (
    BenchResult,
    bench_batched_replay,
    bench_compiled_replay,
    bench_fastpath_hit_rate,
    bench_multicast_fanout,
    bench_serve_hot_cache,
    bench_serve_sharded,
    bench_sweep_throughput,
    bench_trace_replay,
    benchmark_names,
    run_benchmarks,
)
from repro.perf.regress import (
    PerfRegression,
    compare_to_baseline,
    latest_history_row,
    load_baseline,
    write_baseline,
)
from repro.perf.timer import PhaseTimer

__all__ = [
    "BenchResult",
    "PerfRegression",
    "PhaseTimer",
    "bench_batched_replay",
    "bench_compiled_replay",
    "bench_fastpath_hit_rate",
    "bench_multicast_fanout",
    "bench_serve_hot_cache",
    "bench_serve_sharded",
    "bench_sweep_throughput",
    "bench_trace_replay",
    "benchmark_names",
    "compare_to_baseline",
    "latest_history_row",
    "load_baseline",
    "run_benchmarks",
    "write_baseline",
]
