"""Monotonic phase timers.

A :class:`PhaseTimer` slices wall-clock time into named phases with a
single ``lap(name)`` call per boundary -- the shape
:func:`repro.sim.engine.run_trace` expects from its ``timer`` argument.
Laps with the same name accumulate, so a timer can be threaded through a
whole sweep and still report one number per phase.

Built on :func:`time.perf_counter` (monotonic, highest available
resolution); the clock is injectable for tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class PhaseTimer:
    """Accumulates wall-clock time into named phases.

    ``lap(name)`` charges everything since the previous boundary (the
    timer's creation, the last ``lap`` or the last ``restart``) to
    ``name``.  The :meth:`phase` context manager is the bracketed
    equivalent for callers that prefer explicit scopes.
    """

    __slots__ = ("_clock", "_last", "_laps")

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._laps: dict[str, float] = {}
        self._last: float = clock()

    def lap(self, name: str) -> float:
        """Charge the time since the last boundary to ``name``; return it."""
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        self._laps[name] = self._laps.get(name, 0.0) + elapsed
        return elapsed

    def restart(self) -> None:
        """Move the boundary to now without charging anyone."""
        self._last = self._clock()

    @contextmanager
    def phase(self, name: str):
        """Scope whose wall time is charged to ``name`` on exit."""
        start = self._clock()
        try:
            yield self
        finally:
            now = self._clock()
            self._laps[name] = self._laps.get(name, 0.0) + (now - start)
            self._last = now

    @property
    def laps(self) -> dict[str, float]:
        """Accumulated seconds per phase (insertion-ordered copy)."""
        return dict(self._laps)

    @property
    def total(self) -> float:
        """Seconds accounted to any phase so far."""
        return sum(self._laps.values())

    def as_dict(self) -> dict[str, float]:
        """JSON-ready ``{phase: seconds}`` snapshot."""
        return dict(self._laps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{name}={seconds:.4f}s" for name, seconds in self._laps.items()
        )
        return f"PhaseTimer({inner})"
