"""Pinned-seed microbenchmarks of the simulator's hot paths.

Eight benchmarks, chosen to cover the traffic shapes the repo's
experiments exercise:

* **trace replay** -- the §4 methodology end to end: a Markov reference
  trace driven through the two-mode protocol on ``N = 64`` (the paper's
  network size), measured in references per second;
* **compiled replay** -- the identical workload in columnar
  :class:`~repro.sim.ctrace.CompiledTrace` form, replayed through the
  protocol's stable-state fast path (what the executor runs by default);
  its equivalence check requires the report to be bit-identical to the
  per-``Reference`` loop's;
* **fast-path hit rate** -- fast-path engagement on that workload, with
  the exact hit/miss split pinned as machine-independent checks;
* **batched replay** -- the large-system stress: an ``N = 1024``
  distributed-write workload replayed through the chunked
  :class:`~repro.sim.kernel.BatchedKernel`; its equivalence checks
  require the kernel's ledgers to be bit-identical to the
  per-reference fast-path table at full length *and* to the classic
  per-``Reference`` dispatch loop on a same-seed prefix;
* **multicast fan-out** -- the §3 machinery in isolation: repeated
  combined-scheme sends to randomized destination sets, measured in sends
  per second;
* **sweep throughput** -- a miniature parameter sweep (three sharer
  counts), the shape of the figure-regenerating benchmarks;
* **serve hot cache** -- the :mod:`repro.serve` daemon answering
  repeated submissions of the flagship cell from its in-memory hot
  tier, measured in requests per second through the real unix-socket
  protocol; its equivalence check requires the served report to be
  bit-identical to a direct executor run and the daemon to have
  executed the cell exactly once;
* **serve sharded** -- the scale-out counterpart: a
  :class:`~repro.serve.router.ServeRouter` fronting four daemon
  subprocesses, hammered by concurrent clients round-robining one
  flagship-shaped cell per shard, measured in aggregate requests per
  second; every served report must be bit-identical to direct executor
  runs and the fleet's merged execution ledger must read exactly one
  run per cell.

Every benchmark is paired with an **equivalence check**: the identical
workload is replayed with route-plan memoisation disabled
(``network.route_plans = None``), and the results must match *exactly* --
same total bits, same per-level bits, same event counters, same
per-operation :class:`~repro.network.multicast.MulticastResult` values.
A failed check raises :class:`EquivalenceError`; timing varies with the
host, correctness must not.

All seeds are pinned, so two runs on one machine do identical work and
cross-run comparisons (see :mod:`repro.perf.regress`) are fair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from repro.analysis.compare import default_factories
from repro.errors import ConfigurationError
from repro.network.multicast import Multicaster, MulticastScheme
from repro.network.topology import OmegaNetwork
from repro.protocol.messages import MessageCosts
from repro.sim.engine import SimulationReport, run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace


class EquivalenceError(AssertionError):
    """Cached and cold replays disagreed -- a memoisation bug."""


@dataclass
class BenchResult:
    """Outcome of one microbenchmark.

    ``rate`` is ``work / wall_time`` in ``unit`` per second, from the best
    (lowest-noise) timed repetition; ``checks`` holds machine-independent
    workload invariants (bit totals) that must agree across runs and
    machines; ``equivalent`` records that the cold-path check passed.
    """

    name: str
    unit: str
    work: int
    wall_time: float
    rate: float
    equivalent: bool
    checks: dict[str, int] = field(default_factory=dict)
    plan_stats: dict[str, int | float] | None = None

    def to_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {
            "name": self.name,
            "unit": self.unit,
            "work": self.work,
            "wall_time": self.wall_time,
            "rate": self.rate,
            "equivalent": self.equivalent,
            "checks": dict(self.checks),
            "plan_stats": (
                dict(self.plan_stats) if self.plan_stats is not None else None
            ),
        }


# ----------------------------------------------------------------------
# Workload builders (pinned seeds throughout)
# ----------------------------------------------------------------------


def _replay_report(
    n_nodes: int,
    n_tasks: int,
    write_fraction: float,
    n_references: int,
    seed: int,
    protocol_name: str,
    *,
    memoise: bool,
    recorder=None,
    compiled: bool = False,
) -> tuple[SimulationReport, System, object, float]:
    """One full trace replay; returns (report, system, protocol, seconds).

    ``compiled=True`` builds the columnar trace form instead, which takes
    the engine's column loop and -- with every per-reference check off,
    as here -- the protocol's stable-state fast path.
    """
    trace = markov_block_trace(
        n_nodes,
        tasks=list(range(n_tasks)),
        write_fraction=write_fraction,
        n_references=n_references,
        seed=seed,
        compiled=compiled,
    )
    config = SystemConfig(n_nodes=n_nodes, costs=MessageCosts.uniform(20))
    system = System(config)
    if not memoise:
        system.network.route_plans = None
    protocol = default_factories()[protocol_name](system)
    start = perf_counter()
    report = run_trace(
        protocol,
        trace if compiled else trace.references,
        verify=False,
        check_invariants_every=0,
        recorder=recorder,
    )
    return report, system, protocol, perf_counter() - start


def _require(condition: bool, detail: str) -> None:
    if not condition:
        raise EquivalenceError(f"cached and cold runs diverged: {detail}")


def bench_trace_replay(
    *,
    n_nodes: int = 64,
    n_tasks: int = 16,
    write_fraction: float = 0.3,
    n_references: int = 20000,
    seed: int = 0,
    protocol_name: str = "two-mode",
    repeats: int = 3,
) -> BenchResult:
    """Markov trace replay on ``N = 64``: the repo's end-to-end hot path."""
    best_time = None
    report = system = None
    for _ in range(max(1, repeats)):
        report, system, _protocol, seconds = _replay_report(
            n_nodes,
            n_tasks,
            write_fraction,
            n_references,
            seed,
            protocol_name,
            memoise=True,
        )
        if best_time is None or seconds < best_time:
            best_time = seconds
    cold_report, _, _, _ = _replay_report(
        n_nodes,
        n_tasks,
        write_fraction,
        n_references,
        seed,
        protocol_name,
        memoise=False,
    )
    _require(
        cold_report.to_dict() == report.to_dict(),
        f"trace replay reports differ "
        f"(cached total_bits={report.network_total_bits}, "
        f"cold total_bits={cold_report.network_total_bits})",
    )
    # Observability must be free when off and exact when on: a replay
    # with a TraceRecorder attached has to reproduce the untraced report
    # bit-for-bit (metrics aside -- that key only exists when tracing)
    # and its message events have to reconcile with the traffic ledger.
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder()
    traced_report, _, _, _ = _replay_report(
        n_nodes,
        n_tasks,
        write_fraction,
        n_references,
        seed,
        protocol_name,
        memoise=True,
        recorder=recorder,
    )
    traced_dict = traced_report.to_dict()
    traced_dict["stats"].pop("metrics", None)
    _require(
        traced_dict == report.to_dict(),
        "attaching a TraceRecorder changed the replay results",
    )
    _require(
        sum(1 for event in recorder.events if event.kind == "message")
        == traced_report.stats.total_messages,
        "trace message events do not reconcile with stats.total_messages",
    )
    # Telemetry sampling is read-only over the traced registry: taking a
    # sample must leave the metrics snapshot byte-identical, and the
    # ring must capture the counter it saw -- stamped on the recorder's
    # deterministic virtual clock, never the wall clock.
    from repro.obs.telemetry import TelemetrySampler

    sampler = TelemetrySampler(recorder.metrics)
    before_sample = recorder.metrics.to_dict()
    tick = sampler.sample(now=recorder.now)
    _require(
        recorder.metrics.to_dict() == before_sample,
        "a telemetry sample mutated the metrics registry",
    )
    _require(
        tick == float(recorder.now)
        and sampler.series("counter.messages").last()
        == (float(recorder.now), recorder.metrics.counters["messages"]),
        "telemetry ring did not capture the sampled message counter",
    )
    return BenchResult(
        name=f"trace_replay_n{n_nodes}",
        unit="refs",
        work=report.n_references,
        wall_time=best_time,
        rate=report.n_references / best_time,
        equivalent=True,
        checks={"total_bits": report.network_total_bits},
        plan_stats=system.route_plan_stats(),
    )


def bench_compiled_replay(
    *,
    n_nodes: int = 64,
    n_tasks: int = 16,
    write_fraction: float = 0.3,
    n_references: int = 20000,
    seed: int = 0,
    protocol_name: str = "two-mode",
    repeats: int = 3,
) -> BenchResult:
    """Compiled-trace replay through the stable-state fast path.

    The exact workload of :func:`bench_trace_replay`, built in columnar
    :class:`~repro.sim.ctrace.CompiledTrace` form -- what the runner's
    executor replays by default.  The equivalence check replays the same
    references through the classic per-``Reference`` loop (fast path
    structurally disengaged) and requires the reports to be bit-identical,
    so any fast-path shortcut that changes a counter, a traffic ledger,
    or a cache decision fails the perf gate as a correctness bug, not a
    timing blip.
    """
    best_time = None
    report = system = protocol = None
    for _ in range(max(1, repeats)):
        report, system, protocol, seconds = _replay_report(
            n_nodes,
            n_tasks,
            write_fraction,
            n_references,
            seed,
            protocol_name,
            memoise=True,
            compiled=True,
        )
        if best_time is None or seconds < best_time:
            best_time = seconds
    reference_report, _, _, _ = _replay_report(
        n_nodes,
        n_tasks,
        write_fraction,
        n_references,
        seed,
        protocol_name,
        memoise=True,
        compiled=False,
    )
    _require(
        reference_report.to_dict() == report.to_dict(),
        f"compiled fast-path replay diverged from the per-reference loop "
        f"(compiled total_bits={report.network_total_bits}, "
        f"reference total_bits={reference_report.network_total_bits})",
    )
    table = protocol.fastpath()
    _require(
        table is not None
        and table.hits + table.misses == report.n_references,
        "fast-path hit/miss counters do not cover every reference",
    )
    return BenchResult(
        name=f"compiled_replay_n{n_nodes}",
        unit="refs",
        work=report.n_references,
        wall_time=best_time,
        rate=report.n_references / best_time,
        equivalent=True,
        checks={"total_bits": report.network_total_bits},
        plan_stats=system.route_plan_stats(),
    )


def bench_fastpath_hit_rate(
    *,
    n_nodes: int = 64,
    n_tasks: int = 16,
    write_fraction: float = 0.3,
    n_references: int = 20000,
    seed: int = 0,
    protocol_name: str = "two-mode",
) -> BenchResult:
    """Fast-path engagement on the flagship workload.

    ``rate`` is fast-path *hits* per second; the machine-independent
    checks pin the exact hit/miss split, so a change in fast-path
    coverage (a lost record kind, a new epoch-bump site) shows up as a
    cross-machine check mismatch, not silent slowdown.  The equivalence
    check replays the same compiled trace with the message log enabled --
    which must disable the fast path entirely -- and requires the generic
    column loop to produce the identical report.
    """
    report, system, protocol, seconds = _replay_report(
        n_nodes,
        n_tasks,
        write_fraction,
        n_references,
        seed,
        protocol_name,
        memoise=True,
        compiled=True,
    )
    table = protocol.fastpath()
    _require(table is not None, "fast path did not engage on a clean replay")
    _require(
        table.hits + table.misses == report.n_references,
        "fast-path hit/miss counters do not cover every reference",
    )
    trace = markov_block_trace(
        n_nodes,
        tasks=list(range(n_tasks)),
        write_fraction=write_fraction,
        n_references=n_references,
        seed=seed,
        compiled=True,
    )
    config = SystemConfig(n_nodes=n_nodes, costs=MessageCosts.uniform(20))
    gated_system = System(config)
    gated_protocol = default_factories()[protocol_name](gated_system)
    gated_protocol.enable_message_log()
    gated_report = run_trace(
        gated_protocol,
        trace,
        verify=False,
        check_invariants_every=0,
    )
    _require(
        gated_protocol.fastpath() is None,
        "an enabled message log must disable the fast path",
    )
    _require(
        gated_report.to_dict() == report.to_dict(),
        "fast-path replay diverged from the gated column loop",
    )
    return BenchResult(
        name=f"fastpath_hit_rate_n{n_nodes}",
        unit="hits",
        work=table.hits,
        wall_time=seconds,
        rate=table.hits / seconds,
        equivalent=True,
        checks={
            "fastpath_hits": table.hits,
            "fastpath_misses": table.misses,
            "total_bits": report.network_total_bits,
        },
        plan_stats=system.route_plan_stats(),
    )


def bench_batched_replay(
    *,
    n_nodes: int = 1024,
    write_fraction: float = 0.3,
    n_references: int = 200000,
    n_slow_references: int = 20000,
    seed: int = 11,
    protocol_name: str = "distributed-write",
    repeats: int = 3,
) -> BenchResult:
    """Chunked-kernel replay at ``N = 1024``: the large-system hot path.

    A Markov workload over a strided task set drives the
    distributed-write protocol on a vector-scheme multicaster (the
    scheme whose split-tree plans the fast path memoises), so the
    steady state is owner-write multicasts executed by the
    :class:`~repro.sim.kernel.BatchedKernel`'s clean chunks.  Two
    equivalence checks bound the kernel from both sides:

    * the identical compiled trace replayed through the per-reference
      :class:`~repro.protocol.fastpath.FastPathTable` (kernel bypassed)
      must leave bit-identical Stats ledgers and network counters at
      the full trace length;
    * a same-seed prefix (``markov_block_trace`` draws per reference,
      so a shorter trace is an exact prefix of a longer one) replayed
      through the classic per-``Reference`` dispatch loop must produce
      a bit-identical report.

    The machine-independent checks additionally pin the exact
    batched/fallback reference split, so a chunk-validation regression
    shows up as a cross-machine check mismatch, not silent slowdown.
    """
    # 64 tasks strided across the machine (every 16th node at N=1024).
    tasks = list(range(0, n_nodes, max(1, n_nodes // 64)))

    def build() -> tuple[System, object]:
        config = SystemConfig(
            n_nodes=n_nodes, costs=MessageCosts.uniform(20)
        )
        system = System(
            config,
            multicaster_factory=lambda network: Multicaster(
                network, MulticastScheme.VECTOR
            ),
        )
        return system, default_factories()[protocol_name](system)

    trace = markov_block_trace(
        n_nodes,
        tasks=tasks,
        write_fraction=write_fraction,
        n_references=n_references,
        seed=seed,
        compiled=True,
    )
    # The telemetry acceptance shape: a TelemetrySampler importable but
    # *detached* (its registry is not the one any hook writes to) must
    # cost the kernel path nothing and observe nothing -- the timed loop
    # below is exactly the run the 1M refs/s CI floor gates.
    from repro.obs.metrics import MetricsRegistry as _TelemetryRegistry
    from repro.obs.telemetry import TelemetrySampler as _Sampler

    detached_sampler = _Sampler(_TelemetryRegistry())
    best_time = None
    report = system = protocol = None
    for _ in range(max(1, repeats)):
        system, protocol = build()
        start = perf_counter()
        report = run_trace(
            protocol, trace, verify=False, check_invariants_every=0
        )
        seconds = perf_counter() - start
        if best_time is None or seconds < best_time:
            best_time = seconds
    _require(
        detached_sampler.empty and detached_sampler.registry.empty,
        "a detached TelemetrySampler observed the batched replay",
    )
    kernel = protocol.batched_kernel()
    _require(
        kernel is not None, "batched kernel did not engage on a clean replay"
    )
    _require(
        kernel.batched_refs + kernel.fallback_refs == report.n_references,
        "kernel batched/fallback counters do not cover every reference",
    )
    _require(
        kernel.batched_refs > kernel.fallback_refs,
        "clean chunks did not dominate the steady state",
    )
    # Side one: the per-reference fast-path table, kernel bypassed.
    table_system, table_protocol = build()
    table_protocol.fastpath().replay(trace)
    _require(
        dict(table_protocol.stats.events) == dict(protocol.stats.events)
        and dict(table_protocol.stats.traffic_bits)
        == dict(protocol.stats.traffic_bits)
        and dict(table_protocol.stats.traffic_messages)
        == dict(protocol.stats.traffic_messages),
        "batched kernel ledgers diverged from the per-reference table",
    )
    _require(
        table_system.network.total_bits == system.network.total_bits
        and table_system.network.bits_by_level()
        == system.network.bits_by_level(),
        f"batched kernel traffic diverged from the per-reference table "
        f"(batched total_bits={system.network.total_bits}, "
        f"table total_bits={table_system.network.total_bits})",
    )
    # Side two: the classic per-Reference dispatch loop, on a same-seed
    # prefix short enough to afford per-reference Python dispatch.
    prefix = markov_block_trace(
        n_nodes,
        tasks=tasks,
        write_fraction=write_fraction,
        n_references=n_slow_references,
        seed=seed,
        compiled=True,
    )
    _, prefix_protocol = build()
    prefix_report = run_trace(
        prefix_protocol, prefix, verify=False, check_invariants_every=0
    )
    slow_trace = markov_block_trace(
        n_nodes,
        tasks=tasks,
        write_fraction=write_fraction,
        n_references=n_slow_references,
        seed=seed,
    )
    _, slow_protocol = build()
    slow_report = run_trace(
        slow_protocol,
        slow_trace.references,
        verify=False,
        check_invariants_every=0,
    )
    _require(
        slow_report.to_dict() == prefix_report.to_dict(),
        f"batched kernel diverged from the per-Reference dispatch loop "
        f"(batched total_bits={prefix_report.network_total_bits}, "
        f"reference total_bits={slow_report.network_total_bits})",
    )
    return BenchResult(
        name=f"batched_replay_n{n_nodes}",
        unit="refs",
        work=report.n_references,
        wall_time=best_time,
        rate=report.n_references / best_time,
        equivalent=True,
        checks={
            "total_bits": report.network_total_bits,
            "batched_refs": kernel.batched_refs,
            "fallback_refs": kernel.fallback_refs,
            "total_bits_prefix": prefix_report.network_total_bits,
        },
        plan_stats=system.route_plan_stats(),
    )


def _fanout_operations(
    n_nodes: int, n_sets: int, seed: int
) -> list[tuple[int, int, frozenset[int]]]:
    """Pinned-seed ``(source, payload_bits, destset)`` operations."""
    rng = random.Random(seed)
    operations = []
    for _ in range(n_sets):
        source = rng.randrange(n_nodes)
        size = rng.randint(2, max(2, n_nodes // 4))
        destset = frozenset(rng.sample(range(n_nodes), size))
        payload = rng.choice((0, 20, 84, 276))
        operations.append((source, payload, destset))
    return operations


def bench_multicast_fanout(
    *,
    n_nodes: int = 64,
    n_sets: int = 100,
    sends_per_set: int = 50,
    seed: int = 1234,
) -> BenchResult:
    """Combined-scheme sends to randomized destination sets.

    Each of ``n_sets`` pinned destination sets is sent ``sends_per_set``
    times, so the plan cache's steady state (hit on every repeat) is what
    gets measured -- the same reuse profile protocol traffic exhibits.
    """
    operations = _fanout_operations(n_nodes, n_sets, seed)
    network = OmegaNetwork(n_nodes)
    caster = Multicaster(network, MulticastScheme.COMBINED)
    start = perf_counter()
    for _ in range(sends_per_set):
        for source, payload, destset in operations:
            caster.send_payload(source, payload, destset)
    wall_time = perf_counter() - start
    total_bits = network.total_bits
    cached_results = [
        caster.send_payload(source, payload, destset)
        for source, payload, destset in operations
    ]

    cold_network = OmegaNetwork(n_nodes)
    cold_network.route_plans = None
    cold_caster = Multicaster(cold_network, MulticastScheme.COMBINED)
    for repeat in range(sends_per_set):
        for index, (source, payload, destset) in enumerate(operations):
            result = cold_caster.send_payload(source, payload, destset)
            if repeat == 0:
                _require(
                    result == cached_results[index],
                    f"fan-out operation {index} "
                    f"(source={source}, |dests|={len(destset)})",
                )
    # The extra cached send per operation above must be mirrored cold
    # before counter totals can be compared.
    for source, payload, destset in operations:
        cold_caster.send_payload(source, payload, destset)
    _require(
        cold_network.total_bits == total_bits
        + sum(result.cost for result in cached_results),
        f"fan-out bit totals (cached={total_bits}, "
        f"cold={cold_network.total_bits})",
    )
    work = n_sets * sends_per_set
    return BenchResult(
        name=f"multicast_fanout_n{n_nodes}",
        unit="sends",
        work=work,
        wall_time=wall_time,
        rate=work / wall_time,
        equivalent=True,
        checks={"total_bits": total_bits},
        plan_stats=network.route_plans.stats(),
    )


def bench_sweep_throughput(
    *,
    n_nodes: int = 32,
    sharer_counts: tuple[int, ...] = (4, 8, 16),
    n_references: int = 4000,
    seed: int = 7,
    protocol_name: str = "two-mode",
) -> BenchResult:
    """A three-point sharer sweep: the figure-benchmark workload shape."""
    total_refs = 0
    total_seconds = 0.0
    checks: dict[str, int] = {}
    for n_sharers in sharer_counts:
        report, _, _protocol, seconds = _replay_report(
            n_nodes,
            n_sharers,
            0.3,
            n_references,
            seed,
            protocol_name,
            memoise=True,
        )
        cold_report, _, _, _ = _replay_report(
            n_nodes,
            n_sharers,
            0.3,
            n_references,
            seed,
            protocol_name,
            memoise=False,
        )
        _require(
            cold_report.to_dict() == report.to_dict(),
            f"sweep point n_sharers={n_sharers}",
        )
        total_refs += report.n_references
        total_seconds += seconds
        checks[f"total_bits_s{n_sharers}"] = report.network_total_bits
    return BenchResult(
        name=f"sweep_throughput_n{n_nodes}",
        unit="refs",
        work=total_refs,
        wall_time=total_seconds,
        rate=total_refs / total_seconds,
        equivalent=True,
        checks=checks,
    )


def bench_serve_hot_cache(
    *,
    n_nodes: int = 64,
    n_tasks: int = 16,
    write_fraction: float = 0.3,
    n_references: int = 20000,
    seed: int = 0,
    protocol_name: str = "two-mode",
    n_requests: int = 200,
) -> BenchResult:
    """Hot-tier serving throughput through the real daemon.

    A :class:`~repro.serve.daemon.DaemonThread` serves the flagship
    ``N = 64`` cell over a real unix socket; one warming submission
    executes it, then ``n_requests`` timed submissions must all be
    answered from the in-memory hot tier.  The equivalence check
    compares every served report bit-for-bit against a direct
    :class:`~repro.runner.executor.Executor` run of the same spec and
    requires the daemon's per-hash execution ledger to read exactly one
    -- a cache or coalescing bug fails the perf gate as a correctness
    bug, not a timing blip.
    """
    import os
    import shutil
    import tempfile

    from repro.runner.executor import Executor
    from repro.runner.spec import ExperimentSpec, WorkloadSpec
    from repro.serve import DaemonThread, ServeClient, ServeConfig

    spec = ExperimentSpec(
        protocol=protocol_name,
        workload=WorkloadSpec(
            kind="markov",
            n_nodes=n_nodes,
            n_references=n_references,
            write_fraction=write_fraction,
            seed=seed,
            tasks=tuple(range(n_tasks)),
        ),
        config=SystemConfig(n_nodes=n_nodes, costs=MessageCosts.uniform(20)),
    )
    direct = Executor(workers=0).run([spec])[0].report
    direct_dict = direct.to_dict()

    # Unix socket paths are length-limited (~108 bytes), so a short
    # mkdtemp path rather than anything derived from the repo layout.
    tmp = tempfile.mkdtemp(prefix="repro-bench-")
    socket_path = os.path.join(tmp, "serve.sock")
    try:
        config = ServeConfig(socket_path=socket_path, workers=2)
        with DaemonThread(config) as daemon:
            client = ServeClient(socket_path)
            warm = client.submit([spec], name="warm", stream=False)
            _require(
                warm.results[0]["source"] == "queued",
                "warming submission was not executed fresh",
            )
            start = perf_counter()
            outcomes = [
                client.submit([spec], name="hot", stream=False)
                for _ in range(n_requests)
            ]
            wall_time = perf_counter() - start
            for outcome in outcomes:
                frame = outcome.results[0]
                _require(
                    frame["source"] == "hot",
                    f"request served from {frame['source']!r}, "
                    f"not the hot tier",
                )
                _require(
                    frame["report"] == direct_dict,
                    "served report differs from the direct executor run",
                )
            status = client.status()
            _require(
                status["executed"] == {spec.spec_hash: 1},
                f"daemon executed {status['executed']}, expected exactly "
                f"one run of the flagship cell",
            )
            _require(
                status["cache"]["hot_hits"] >= n_requests,
                "hot-tier hit counter does not cover the timed requests",
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return BenchResult(
        name=f"serve_hot_cache_n{n_nodes}",
        unit="requests",
        work=n_requests,
        wall_time=wall_time,
        rate=n_requests / wall_time,
        equivalent=True,
        checks={
            "total_bits": direct.network_total_bits,
            "unique_executions": 1,
        },
    )


def bench_serve_sharded(
    *,
    n_nodes: int = 64,
    n_tasks: int = 16,
    write_fraction: float = 0.3,
    n_references: int = 20000,
    protocol_name: str = "two-mode",
    n_shards: int = 4,
    cells_per_shard: int = 4,
    n_clients: int = 4,
    batches_per_client: int = 50,
) -> BenchResult:
    """Aggregate serving throughput through the sharded router fleet.

    A :class:`~repro.serve.router.RouterThread` fronts ``n_shards``
    daemon subprocesses; seeds are scanned until every shard owns
    ``cells_per_shard`` flagship-shaped cells (``shard_for`` is a pure
    function of the spec content hash, so the scan is deterministic).
    One warming submission executes every cell, then ``n_clients``
    persistent clients each resubmit the full sweep
    ``batches_per_client`` times -- the router's natural workload: a
    sweep-shaped batch that fans out across every shard and streams
    hot-tier results back, one served cell per request.  The
    equivalence check compares every served report bit-for-bit against
    direct :class:`~repro.runner.executor.Executor` runs and requires
    the fleet-aggregated execution ledger to read exactly one per cell
    -- a sharding, coalescing, or relay bug fails the perf gate as a
    correctness bug.

    The gate in ``BENCH_perf.json`` holds this benchmark's rate at
    >= 3x ``serve_hot_cache_n64``: the point of the fleet is aggregate
    requests per second past what one daemon process can do.
    """
    import contextlib
    import os
    import shutil
    import tempfile
    import threading

    from repro.runner.executor import Executor
    from repro.runner.spec import ExperimentSpec, WorkloadSpec
    from repro.serve import RouterConfig, RouterThread, ServeClient
    from repro.serve.router import shard_for

    def cell(seed: int) -> ExperimentSpec:
        return ExperimentSpec(
            protocol=protocol_name,
            workload=WorkloadSpec(
                kind="markov",
                n_nodes=n_nodes,
                n_references=n_references,
                write_fraction=write_fraction,
                seed=seed,
                tasks=tuple(range(n_tasks)),
            ),
            config=SystemConfig(n_nodes=n_nodes, costs=MessageCosts.uniform(20)),
        )

    # ``cells_per_shard`` cells per shard, found by scanning pinned
    # seeds: the content hash decides the shard, so the seeds landing
    # on each shard are stable across runs and machines.
    by_shard: dict[int, list[ExperimentSpec]] = {
        index: [] for index in range(n_shards)
    }
    seed = 0
    while any(len(group) < cells_per_shard for group in by_shard.values()):
        spec = cell(seed)
        group = by_shard[shard_for(spec.spec_hash, n_shards)]
        if len(group) < cells_per_shard:
            group.append(spec)
        seed += 1
        _require(seed < 256, "seed scan failed to cover every shard")
    specs = [
        spec
        for index in range(n_shards)
        for spec in by_shard[index]
    ]
    direct_by_hash = {
        row.spec.spec_hash: row.report.to_dict()
        for row in Executor(workers=0).run(specs)
    }
    total_bits = sum(
        report["network_total_bits"] for report in direct_by_hash.values()
    )

    tmp = tempfile.mkdtemp(prefix="repro-bench-")
    socket_path = os.path.join(tmp, "router.sock")
    try:
        config = RouterConfig(
            socket_path=socket_path, shards=n_shards, workers=2
        )
        with RouterThread(config) as _router:
            warm = ServeClient(socket_path).submit(
                specs, name="warm", stream=False
            )
            for frame in warm.results:
                _require(
                    frame["source"] == "queued",
                    "warming submission was not executed fresh",
                )

            failures: list[BaseException] = []
            outcomes: list[list] = [[] for _ in range(n_clients)]
            barrier = threading.Barrier(n_clients + 1)

            def run_client(index: int) -> None:
                try:
                    with ServeClient(socket_path) as client:
                        barrier.wait()
                        for _ in range(batches_per_client):
                            outcomes[index].append(
                                client.submit(
                                    specs,
                                    name=f"hot-{index}",
                                    stream=False,
                                )
                            )
                except BaseException as exc:  # noqa: BLE001 - reported
                    failures.append(exc)
                    barrier.abort()

            threads = [
                threading.Thread(target=run_client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            with contextlib.suppress(threading.BrokenBarrierError):
                barrier.wait()
            start = perf_counter()
            for thread in threads:
                thread.join()
            wall_time = perf_counter() - start
            if failures:
                raise failures[0]
            for per_client in outcomes:
                for outcome in per_client:
                    _require(
                        len(outcome.results) == len(specs),
                        f"batch returned {len(outcome.results)} results "
                        f"for {len(specs)} cells",
                    )
                    for frame in outcome.results:
                        _require(
                            frame["source"] == "hot",
                            f"request served from {frame['source']!r}, "
                            f"not the hot tier",
                        )
                        _require(
                            frame["report"]
                            == direct_by_hash[frame["spec_hash"]],
                            "served report differs from the direct "
                            "executor run",
                        )
            status = ServeClient(socket_path).status()
            _require(
                status["executed"]
                == {spec.spec_hash: 1 for spec in specs},
                f"fleet executed {status['executed']}, expected exactly "
                f"one run per cell",
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    n_requests = n_clients * batches_per_client * len(specs)
    return BenchResult(
        name=f"serve_sharded_n{n_nodes}",
        unit="requests",
        work=n_requests,
        wall_time=wall_time,
        rate=n_requests / wall_time,
        equivalent=True,
        checks={
            "total_bits": total_bits,
            "unique_executions": len(specs),
        },
    )


#: Definition-order registry: benchmark name -> runner taking the timing
#: repeat count (ignored by benchmarks that time a single pass).  The
#: keys are the exact ``BenchResult.name`` values, so ``repro perf
#: --only`` can select by the names the baseline and history files use.
_BENCHMARKS = {
    "trace_replay_n64": lambda repeats: bench_trace_replay(repeats=repeats),
    "compiled_replay_n64": lambda repeats: bench_compiled_replay(
        repeats=repeats
    ),
    "fastpath_hit_rate_n64": lambda repeats: bench_fastpath_hit_rate(),
    "batched_replay_n1024": lambda repeats: bench_batched_replay(
        repeats=repeats
    ),
    "multicast_fanout_n64": lambda repeats: bench_multicast_fanout(),
    "sweep_throughput_n32": lambda repeats: bench_sweep_throughput(),
    "serve_hot_cache_n64": lambda repeats: bench_serve_hot_cache(),
    "serve_sharded_n64": lambda repeats: bench_serve_sharded(),
}


def benchmark_names() -> tuple[str, ...]:
    """The registered benchmark names, in definition order."""
    return tuple(_BENCHMARKS)


def run_benchmarks(
    *,
    equivalence_only: bool = False,
    repeats: int = 3,
    only: "Sequence[str] | None" = None,
) -> dict[str, BenchResult]:
    """Run the suite (or a subset); name -> result, in definition order.

    ``equivalence_only`` drops the timing repetitions to one: the
    cached-vs-cold asserts still run in full (that is the point of the
    mode -- CI machines time poorly but must still prove bit-identity).
    ``only`` selects a subset of benchmarks by name (in any order; they
    run in definition order); an unknown name raises
    :class:`~repro.errors.ConfigurationError` listing the valid names.
    """
    if equivalence_only:
        repeats = 1
    if only is None:
        selected = list(_BENCHMARKS)
    else:
        unknown = sorted(set(only) - set(_BENCHMARKS))
        if unknown:
            raise ConfigurationError(
                f"unknown benchmark name(s): {', '.join(unknown)} "
                f"(valid names: {', '.join(_BENCHMARKS)})"
            )
        wanted = set(only)
        selected = [name for name in _BENCHMARKS if name in wanted]
    results = [_BENCHMARKS[name](repeats) for name in selected]
    return {result.name: result for result in results}
