"""Experiment-as-a-service: daemons and a router serving sweep traffic.

The serving layer over :mod:`repro.runner` (see docs/SERVE.md):

* :mod:`repro.serve.protocol` -- the length-prefixed JSON wire format,
  endpoint-address parsing and request validation;
* :mod:`repro.serve.daemon` -- the asyncio daemon (unix socket, plus an
  optional TCP ``listen`` endpoint): in-flight coalescing by spec
  content hash, a two-tier result cache (in-memory LRU over the disk
  store with an optional expiry policy), bounded-queue admission
  control with explicit overload rejection, a sharded worker pool over
  the existing :class:`~repro.runner.executor.Executor`, streamed
  progress events sourced from the run journal, and graceful drain;
* :mod:`repro.serve.router` -- scale-out: a thin router that owns the
  client-facing endpoints, maps every submission cell to one of N
  supervised daemon subprocesses by spec content hash (coalescing and
  caching stay per-shard correct with zero cross-shard coordination),
  and relays frames without buffering;
* :mod:`repro.serve.client` -- a blocking client speaking either
  transport (what ``repro submit`` uses; the CLI is just one client of
  the service).

Quickstart::

    from repro.serve import DaemonThread, ServeClient, ServeConfig

    with DaemonThread(ServeConfig(socket_path="/tmp/repro.sock")):
        client = ServeClient("/tmp/repro.sock")
        outcome = client.submit(list(sweep.cells), name=sweep.name)
        reports = outcome.reports()
"""

from repro.serve.client import ServeClient, SubmitOutcome
from repro.serve.daemon import DaemonThread, ServeConfig, ServeDaemon
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    decode_payload,
    encode_frame,
    parse_address,
    parse_submit_cells,
    peek_frame_type,
    peek_spec_hash,
    read_frame,
    read_frame_bytes,
    read_frame_raw,
    read_frame_sync,
    route_submit_cells,
    write_frame,
    write_frame_sync,
)
from repro.serve.router import (
    RouterConfig,
    RouterThread,
    ServeRouter,
    shard_for,
)

__all__ = [
    "DaemonThread",
    "MAX_FRAME_BYTES",
    "RouterConfig",
    "RouterThread",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeRouter",
    "SubmitOutcome",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "parse_address",
    "parse_submit_cells",
    "peek_frame_type",
    "peek_spec_hash",
    "read_frame",
    "read_frame_bytes",
    "read_frame_raw",
    "read_frame_sync",
    "route_submit_cells",
    "shard_for",
    "write_frame",
    "write_frame_sync",
]
