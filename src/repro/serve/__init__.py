"""Experiment-as-a-service: a daemon serving heavy sweep traffic.

The serving layer over :mod:`repro.runner` (see docs/SERVE.md):

* :mod:`repro.serve.protocol` -- the length-prefixed JSON wire format
  and request validation;
* :mod:`repro.serve.daemon` -- the asyncio unix-socket daemon:
  in-flight coalescing by spec content hash, a two-tier result cache
  (in-memory LRU over the disk store), bounded-queue admission control
  with explicit overload rejection, a sharded worker pool over the
  existing :class:`~repro.runner.executor.Executor`, streamed progress
  events sourced from the run journal, and graceful drain;
* :mod:`repro.serve.client` -- a blocking client (what ``repro submit``
  uses; the CLI is just one client of the service).

Quickstart::

    from repro.serve import DaemonThread, ServeClient, ServeConfig

    with DaemonThread(ServeConfig(socket_path="/tmp/repro.sock")):
        client = ServeClient("/tmp/repro.sock")
        outcome = client.submit(list(sweep.cells), name=sweep.name)
        reports = outcome.reports()
"""

from repro.serve.client import ServeClient, SubmitOutcome
from repro.serve.daemon import DaemonThread, ServeConfig, ServeDaemon
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    parse_submit_cells,
    read_frame,
    read_frame_sync,
    write_frame,
    write_frame_sync,
)

__all__ = [
    "DaemonThread",
    "MAX_FRAME_BYTES",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "SubmitOutcome",
    "decode_payload",
    "encode_frame",
    "parse_submit_cells",
    "read_frame",
    "read_frame_sync",
    "write_frame",
    "write_frame_sync",
]
