"""The serve wire protocol: length-prefixed JSON frames.

Every message in either direction is one **frame**: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON whose top
level is an object.  Length-prefixing (rather than newline-delimiting)
keeps the protocol 8-bit clean and lets a reader allocate exactly once;
the :data:`MAX_FRAME_BYTES` ceiling stops a confused or hostile peer
from making the daemon buffer gigabytes.

Requests are objects with an ``op`` field -- ``ping``, ``status``,
``metrics``, ``submit``, ``drain`` -- and responses carry a ``type``
field (``pong``, ``status``, ``metrics``, ``accepted``, ``event``,
``result``, ``error``, ``rejected``, ``done``).  The ``metrics``
response is the daemon's ``/metrics`` surface: Prometheus-style
plaintext exposition under ``text`` plus the structured registry,
time-series rings and flight-recorder summary.  See docs/SERVE.md for
the full exchange.

Both an asyncio flavour (:func:`read_frame` / :func:`write_frame`, used
by the daemon) and a blocking-stream flavour (:func:`read_frame_sync` /
:func:`write_frame_sync`, used by :class:`~repro.serve.client.ServeClient`)
share the same :func:`encode_frame` / :func:`decode_payload` core, so
the two sides cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO

from repro.errors import ConfigurationError, FrameError
from repro.runner.spec import ExperimentSpec

#: Frame payload ceiling.  A 10k-cell sweep of serialised reports fits
#: comfortably; anything bigger is a protocol violation, not a workload.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Request operations the daemon understands.
REQUEST_OPS = ("ping", "status", "metrics", "submit", "drain")


# ---------------------------------------------------------------------------
# Frame encoding (shared by both flavours)
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise ``payload`` as one length-prefixed frame."""
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body back into its payload object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame, above the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )


# ---------------------------------------------------------------------------
# asyncio flavour (daemon side)
# ---------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError(
            f"connection closed mid-header "
            f"({len(exc.partial)}/{_HEADER.size} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# Blocking flavour (client side)
# ---------------------------------------------------------------------------


def read_frame_sync(stream: BinaryIO) -> dict | None:
    """Read one frame from a blocking binary stream; ``None`` on EOF."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError(
            f"stream ended mid-header ({len(header)}/{_HEADER.size} bytes)"
        )
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = stream.read(length)
    if len(body) < length:
        raise FrameError(
            f"stream ended mid-frame ({len(body)}/{length} bytes)"
        )
    return decode_payload(body)


def write_frame_sync(stream: BinaryIO, payload: dict) -> None:
    """Write one frame to a blocking binary stream and flush."""
    stream.write(encode_frame(payload))
    stream.flush()


# ---------------------------------------------------------------------------
# Request validation (daemon side)
# ---------------------------------------------------------------------------


def parse_submit_cells(frame: dict) -> tuple[str, list[ExperimentSpec]]:
    """Validate a ``submit`` frame into ``(name, specs)``.

    The ``cells`` field is a non-empty list of serialised
    :class:`~repro.runner.spec.ExperimentSpec` objects; every cell is
    fully validated (spec construction re-runs all the constructor
    checks), so nothing malformed ever reaches the execution pipeline.
    Raises :class:`~repro.errors.ConfigurationError` with a cell index
    in the message so clients can fix the right one.
    """
    name = frame.get("name", "submit")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"submit name must be a non-empty string, got {name!r}"
        )
    cells = frame.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ConfigurationError(
            "submit needs a non-empty 'cells' list of experiment specs"
        )
    specs = []
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ConfigurationError(
                f"cell {index} is not an object "
                f"(got {type(cell).__name__})"
            )
        try:
            specs.append(ExperimentSpec.from_dict(cell))
        except ConfigurationError as exc:
            raise ConfigurationError(f"cell {index}: {exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"cell {index} is not a valid experiment spec: {exc!r}"
            ) from None
    return name, specs
