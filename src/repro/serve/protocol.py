"""The serve wire protocol: length-prefixed JSON frames.

Every message in either direction is one **frame**: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON whose top
level is an object.  Length-prefixing (rather than newline-delimiting)
keeps the protocol 8-bit clean and lets a reader allocate exactly once;
the :data:`MAX_FRAME_BYTES` ceiling stops a confused or hostile peer
from making the daemon buffer gigabytes.

Requests are objects with an ``op`` field -- ``ping``, ``status``,
``metrics``, ``submit``, ``drain`` -- and responses carry a ``type``
field (``pong``, ``status``, ``metrics``, ``accepted``, ``event``,
``result``, ``error``, ``rejected``, ``done``).  The ``metrics``
response is the daemon's ``/metrics`` surface: Prometheus-style
plaintext exposition under ``text`` plus the structured registry,
time-series rings and flight-recorder summary.  See docs/SERVE.md for
the full exchange.

Both an asyncio flavour (:func:`read_frame` / :func:`write_frame`, used
by the daemon) and a blocking-stream flavour (:func:`read_frame_sync` /
:func:`write_frame_sync`, used by :class:`~repro.serve.client.ServeClient`)
share the same :func:`encode_frame` / :func:`decode_payload` core, so
the two sides cannot drift.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
from typing import BinaryIO

from repro.errors import ConfigurationError, FrameError
from repro.runner.spec import ExperimentSpec, _canonical_json

#: Frame payload ceiling.  A 10k-cell sweep of serialised reports fits
#: comfortably; anything bigger is a protocol violation, not a workload.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Request operations the daemon understands.
REQUEST_OPS = ("ping", "status", "metrics", "submit", "drain")


# ---------------------------------------------------------------------------
# Frame encoding (shared by both flavours)
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise ``payload`` as one length-prefixed frame."""
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body back into its payload object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame, above the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )


# ---------------------------------------------------------------------------
# asyncio flavour (daemon side)
# ---------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError(
            f"connection closed mid-header "
            f"({len(exc.partial)}/{_HEADER.size} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes)"
        ) from None
    return decode_payload(body)


async def read_frame_bytes(
    reader: asyncio.StreamReader,
) -> bytes | None:
    """Read one frame's exact wire bytes (header included), undecoded.

    The relay and memoisation paths key on a frame's bytes and decode
    lazily (or not at all -- see :func:`peek_frame_type`), so the
    common case pays for one read and zero JSON parses.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError(
            f"connection closed mid-header "
            f"({len(exc.partial)}/{_HEADER.size} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes)"
        ) from None
    return header + body


def decode_frame(raw: bytes) -> dict:
    """Decode a raw frame (as returned by :func:`read_frame_bytes`)."""
    return decode_payload(raw[_HEADER.size:])


async def read_frame_raw(
    reader: asyncio.StreamReader,
) -> tuple[dict, bytes] | None:
    """Like :func:`read_frame`, but also return the raw frame bytes.

    The router's relay path decodes a frame once to inspect its type,
    then forwards the *original* bytes (header included) verbatim --
    no re-encode, and the client receives exactly what the shard sent.
    """
    raw = await read_frame_bytes(reader)
    if raw is None:
        return None
    return decode_frame(raw), raw


#: ``encode_frame`` serialises with sorted keys, so ``"type"`` is the
#: last key of every streamed response frame (``event``, ``artifact``,
#: ``result``, ``error``, ``done`` -- none carries a key sorting after
#: ``"type"``) and the serialised object *ends* with ``"type": "<k>"}``.
#: That makes the frame kind readable from the tail bytes alone.
_TYPE_TAIL = b'"type": "'


def peek_frame_type(raw: bytes) -> str | None:
    """Classify a raw frame by its tail bytes, without JSON-decoding.

    Returns the frame's ``type`` when the frame was produced by
    :func:`encode_frame` and ``"type"`` is its last sorted key; ``None``
    otherwise (the caller should fall back to :func:`decode_frame`).
    The relay hot path skips a full JSON parse per streamed result this
    way -- the payload-heavy frames are exactly the ones it never needs
    to understand.
    """
    if not raw.endswith(b'"}'):
        return None
    at = raw.rfind(_TYPE_TAIL, max(0, len(raw) - 32))
    if at == -1:
        return None
    return raw[at + len(_TYPE_TAIL):-2].decode("ascii", "replace")


_SPEC_HASH_KEY = b'"spec_hash": "'


def peek_spec_hash(raw: bytes) -> str | None:
    """Extract the top-level ``spec_hash`` of a raw frame, if any.

    Sound for frames produced by :func:`encode_frame` whose keys
    sorting after ``"spec_hash"`` (``task``, ``type``) hold short plain
    strings -- then the *last* occurrence of the key is the top-level
    one, however large the nested report payload before it.
    """
    at = raw.rfind(_SPEC_HASH_KEY)
    if at == -1:
        return None
    start = at + len(_SPEC_HASH_KEY)
    stop = raw.find(b'"', start)
    if stop == -1:
        return None
    return raw[start:stop].decode("ascii", "replace")


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ---------------------------------------------------------------------------
# Blocking flavour (client side)
# ---------------------------------------------------------------------------


def read_frame_sync(stream: BinaryIO) -> dict | None:
    """Read one frame from a blocking binary stream; ``None`` on EOF."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError(
            f"stream ended mid-header ({len(header)}/{_HEADER.size} bytes)"
        )
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = stream.read(length)
    if len(body) < length:
        raise FrameError(
            f"stream ended mid-frame ({len(body)}/{length} bytes)"
        )
    return decode_payload(body)


def write_frame_sync(stream: BinaryIO, payload: dict) -> None:
    """Write one frame to a blocking binary stream and flush."""
    stream.write(encode_frame(payload))
    stream.flush()


# ---------------------------------------------------------------------------
# Endpoint addresses (shared by client, daemon and router)
# ---------------------------------------------------------------------------


def parse_address(address: str) -> tuple:
    """Classify an endpoint address: ``("unix", path)`` or ``("tcp", host, port)``.

    Accepted forms: an explicit scheme (``unix:///run/repro.sock``,
    ``tcp://127.0.0.1:7341``), a bare ``host:port`` whose port is all
    digits and which contains no path separator (``127.0.0.1:7341``,
    ``[::1]:7341``), or anything else as a unix socket path.  The
    explicit schemes exist for the ambiguous cases (a relative file
    literally named ``localhost:80``).
    """
    if not isinstance(address, str) or not address:
        raise ConfigurationError(
            f"endpoint address must be a non-empty string, got {address!r}"
        )
    if address.startswith("unix://"):
        return ("unix", address[len("unix://"):])
    explicit_tcp = address.startswith("tcp://")
    if explicit_tcp:
        address = address[len("tcp://"):]
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and (explicit_tcp or "/" not in address):
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]  # bracketed IPv6 literal
        if not host:
            raise ConfigurationError(
                f"tcp address needs a host, got {address!r}"
            )
        return ("tcp", host, int(port))
    if explicit_tcp:
        raise ConfigurationError(
            f"tcp address must be host:port with a numeric port, "
            f"got {address!r}"
        )
    return ("unix", address)


# ---------------------------------------------------------------------------
# Request validation (daemon side)
# ---------------------------------------------------------------------------


def parse_submit_cells(frame: dict) -> tuple[str, list[ExperimentSpec]]:
    """Validate a ``submit`` frame into ``(name, specs)``.

    The ``cells`` field is a non-empty list of serialised
    :class:`~repro.runner.spec.ExperimentSpec` objects; every cell is
    fully validated (spec construction re-runs all the constructor
    checks), so nothing malformed ever reaches the execution pipeline.
    Raises :class:`~repro.errors.ConfigurationError` with a cell index
    in the message so clients can fix the right one.
    """
    name = frame.get("name", "submit")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"submit name must be a non-empty string, got {name!r}"
        )
    cells = frame.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ConfigurationError(
            "submit needs a non-empty 'cells' list of experiment specs"
        )
    specs = []
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ConfigurationError(
                f"cell {index} is not an object "
                f"(got {type(cell).__name__})"
            )
        try:
            specs.append(ExperimentSpec.from_dict(cell))
        except ConfigurationError as exc:
            raise ConfigurationError(f"cell {index}: {exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"cell {index} is not a valid experiment spec: {exc!r}"
            ) from None
    return name, specs


def route_submit_cells(frame: dict) -> tuple[str, list, list[str]]:
    """Shape-check a ``submit`` frame into ``(name, cells, hashes)``.

    The router's lightweight counterpart to :func:`parse_submit_cells`:
    routing needs only each cell's content hash, so the cells are
    hashed over their canonical JSON and forwarded *verbatim* -- no
    spec construction, no validation.  For a cell in
    :meth:`~repro.runner.spec.ExperimentSpec.to_dict` form (the form
    every client of this protocol sends) the hash equals
    :attr:`~repro.runner.spec.ExperimentSpec.spec_hash`, so the cell
    routes to the shard that owns the spec.  The owning shard remains
    the validation authority: a malformed cell is refused there and the
    refusal relays to the client unchanged.
    """
    name = frame.get("name", "submit")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"submit name must be a non-empty string, got {name!r}"
        )
    cells = frame.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ConfigurationError(
            "submit needs a non-empty 'cells' list of experiment specs"
        )
    hashes = [
        hashlib.sha256(
            _canonical_json(cell).encode("utf-8")
        ).hexdigest()
        for cell in cells
    ]
    return name, cells, hashes
