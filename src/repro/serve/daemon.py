"""The experiment-serving daemon: coalescing, caching, backpressure.

:class:`ServeDaemon` is a long-running asyncio service that accepts
sweep submissions over a unix socket (see :mod:`repro.serve.protocol`
for the wire format), validates them into
:class:`~repro.runner.spec.ExperimentSpec` cells, and satisfies each
unique cell exactly once:

* **two-tier cache** -- a :class:`~repro.runner.cache.TieredResultCache`
  (bounded in-memory LRU over the optional disk store) answers repeated
  submissions without touching the executor;
* **in-flight coalescing** -- cells already executing are joined, not
  re-queued: every submitter of a spec hash awaits the *same* future,
  so a thousand clients with overlapping sweeps collapse to one
  execution each;
* **admission control** -- new work beyond ``max_queue`` pending cells
  is rejected whole (``rejected`` frame, all-or-nothing) rather than
  buffered without bound; rejection is explicit backpressure, never
  silent queueing;
* **worker pool** -- ``workers`` asyncio workers each run one cell at a
  time through the existing :class:`~repro.runner.executor.Executor`
  (in a thread via ``asyncio.to_thread``; ``exec_workers`` forwards to
  the executor's own process fan-out), so retry/backoff/error
  classification semantics are exactly the CLI's;
* **streamed progress** -- every journal event carrying a task hash
  (``task_start``, ``task_finish`` with ``refs_per_sec``, retries,
  fault events) is broadcast to the clients whose submissions cover
  that task, prefixed by an admission event (``task_hot`` /
  ``task_disk`` / ``task_coalesced`` / ``task_queued``) telling each
  client how each cell will be satisfied;
* **graceful drain** -- on ``drain`` (or SIGTERM via the CLI) the
  daemon stops admitting, finishes every queued and in-flight cell,
  lets connected clients collect their results, fsyncs the journal and
  removes the socket.

The daemon journals through a :class:`~repro.runner.journal.RunJournal`
with ``fsync=True``, so a ``SIGKILL`` at any instant leaves at most one
torn final line -- which :func:`~repro.runner.journal.read_journal`
drops by design.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError, FrameError, ServeError
from repro.faults.incidents import incident_entries
from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.recorder import FLIGHT_CAPACITY, FlightRecorder
from repro.obs.telemetry import TelemetrySampler, prometheus_text
from repro.runner.cache import TieredResultCache
from repro.runner.executor import Executor
from repro.runner.journal import _HASH_PREFIX, RunJournal
from repro.runner.spec import ExperimentSpec
from repro.serve import protocol as wire

#: Rejection-burst window: this many rejections inside
#: ``_REJECT_BURST_WINDOW`` seconds counts as an overload incident and
#: triggers an automatic flight-recorder dump.
_REJECT_BURST_WINDOW = 10.0

#: In-memory event cap for the daemon journal: beyond this the oldest
#: half is dropped from RAM (the file, when configured, keeps all of
#: them).  Counts stay exact -- they are tallied incrementally.
_JOURNAL_EVENT_CAP = 20000

#: Submission-parse memo bounds: entries hold the raw frame bytes as
#: key plus the parsed frozen specs, so both knobs bound memory
#: (<= entries * max-frame bytes of keys).
_PARSE_MEMO_ENTRIES = 32
_PARSE_MEMO_MAX_FRAME = 256 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`ServeDaemon` needs, as frozen data.

    ``workers`` is the number of concurrently executing cells (each runs
    in its own thread); ``exec_workers`` is forwarded to each cell's
    :class:`~repro.runner.executor.Executor` (0 = in-process, the
    default -- process fan-out *per cell* only pays off for huge cells).
    ``max_queue`` bounds cells admitted but not yet started; submissions
    that would exceed it are rejected whole.  ``task_fn`` is the
    executor's testing hook, threaded through for deterministic daemon
    tests.

    Telemetry knobs: ``sample_interval`` is the wall-clock cadence (in
    seconds) at which the :class:`~repro.obs.telemetry.TelemetrySampler`
    snapshots the registry; ``flight_capacity`` bounds the always-on
    :class:`~repro.obs.recorder.FlightRecorder` ring; ``flight_dir``,
    when set, is where incident dumps land as JSONL (without it the ring
    still records, but nothing is written); ``reject_burst`` is how many
    rejections within ten seconds count as an overload incident.

    ``listen`` adds a TCP endpoint (``host:port``) alongside the unix
    socket -- same protocol, same handler; port 0 picks a free port,
    readable afterwards as :attr:`ServeDaemon.tcp_port`.  **No
    authentication**: bind only on trusted networks (docs/SERVE.md).
    ``disk_max_bytes`` / ``disk_max_age`` forward to the disk tier's
    expiry policy (:class:`~repro.runner.cache.ResultCache`).
    ``stream_artifacts`` makes every fresh execution stream its network
    heatmaps to subscribed clients as an ``artifact`` frame (requires
    the in-process task body, ``exec_workers=0``).
    """

    socket_path: str | Path
    workers: int = 2
    exec_workers: int = 0
    max_queue: int = 64
    hot_capacity: int = 256
    cache_dir: str | Path | None = None
    journal_path: str | Path | None = None
    retries: int = 1
    task_fn: Callable | None = None
    sample_interval: float = 1.0
    flight_capacity: int = FLIGHT_CAPACITY
    flight_dir: str | Path | None = None
    reject_burst: int = 8
    listen: str | None = None
    disk_max_bytes: int | None = None
    disk_max_age: float | None = None
    stream_artifacts: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"serve workers must be >= 1, got {self.workers}"
            )
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.reject_burst < 2:
            raise ConfigurationError(
                f"reject_burst must be >= 2, got {self.reject_burst}"
            )
        if self.listen is not None:
            kind = wire.parse_address(self.listen)
            if kind[0] != "tcp":
                raise ConfigurationError(
                    f"listen must be a tcp host:port, got {self.listen!r}"
                )
        if self.stream_artifacts and self.exec_workers != 0:
            raise ConfigurationError(
                "stream_artifacts needs the in-process task body "
                "(exec_workers=0): heatmaps are captured from the "
                "network object the cell just drove"
            )
        if self.stream_artifacts and self.task_fn is not None:
            raise ConfigurationError(
                "stream_artifacts and task_fn are mutually exclusive"
            )


class _DaemonJournal(RunJournal):
    """The daemon's journal: thread-safe, fsynced, broadcast, bounded.

    Executor threads and the event loop both append; a lock keeps lines
    whole.  Every record is handed to ``on_event`` (the daemon's
    broadcast hook).  ``counts`` is tallied incrementally so it stays
    O(1) while the in-memory event list is trimmed to a cap -- a serving
    daemon runs indefinitely and must not hold every event it ever saw.
    """

    def __init__(self, path, *, on_event) -> None:
        super().__init__(path, fsync=True)
        self._record_lock = threading.Lock()
        self._on_event = on_event
        self._tally = {
            "executed": 0, "cached": 0, "retried": 0, "failed": 0,
        }
        self._tally_keys = {
            "task_finish": "executed",
            "task_cached": "cached",
            "task_retry": "retried",
            "task_failed": "failed",
        }

    def record(self, event: str, **fields: object) -> dict:
        with self._record_lock:
            entry = super().record(event, **fields)
            key = self._tally_keys.get(event)
            if key is not None:
                self._tally[key] += 1
            if len(self.events) > _JOURNAL_EVENT_CAP:
                del self.events[: _JOURNAL_EVENT_CAP // 2]
        self._on_event(entry)
        return entry

    def counts(self) -> dict[str, int]:
        with self._record_lock:
            return dict(self._tally)


class ServeDaemon:
    """The asyncio serving core.  See the module docstring for the model.

    Lifecycle: :meth:`start` binds the socket and launches the worker
    pool; :meth:`run` starts, waits for :meth:`request_stop` (signal
    handlers, a ``drain`` request, or a test), then :meth:`drain`\\ s.
    All coroutine methods must run on one event loop; only
    :meth:`request_stop` is thread-safe.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.cache = TieredResultCache(
            config.cache_dir,
            capacity=config.hot_capacity,
            metrics=self.metrics,
            disk_max_bytes=config.disk_max_bytes,
            disk_max_age=config.disk_max_age,
        )
        self.journal = _DaemonJournal(
            config.journal_path, on_event=self._observe_event
        )
        self.flight = FlightRecorder(config.flight_capacity)
        self.sampler = TelemetrySampler(self.metrics)
        self.sampler.add_source(self._telemetry_gauges)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        #: The bound TCP port once started with ``listen`` (port 0 in
        #: the config resolves to the kernel-assigned port here).
        self.tcp_port: int | None = None
        self._queue: asyncio.Queue | None = None
        self._stop: asyncio.Event | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._executed: dict[str, int] = {}
        self._coalesced = 0
        self._rejected = 0
        self._accepted = 0
        self._busy_workers = 0
        self._draining = False
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._sampler_task: asyncio.Task | None = None
        self._reject_times: deque[float] = deque(
            maxlen=config.reject_burst
        )
        self._flight_seq = 0
        self._flight_lock = threading.Lock()
        # Encoded result frames for cache-served cells, keyed by
        # ``(spec_hash, source)``.  Content-addressed, so an entry can
        # never go stale: a given hash's report is immutable.  Serving
        # a hot cell becomes one buffer write instead of a dict build
        # plus a JSON encode -- the difference between the
        # ``serve_hot_cache`` and ``serve_sharded`` benchmark rates.
        self._frame_cache: "OrderedDict[tuple[str, str], bytes]" = (
            OrderedDict()
        )
        # Parsed submissions keyed by their exact wire bytes.  Sweep
        # clients (poll loops, the router's verbatim relay) resubmit
        # byte-identical frames, and spec construction dominates the
        # hot-serve path; identical bytes parse to the identical value,
        # so repeats reuse the frozen specs -- cached hashes included.
        self._parse_memo: "OrderedDict[bytes, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the unix socket and launch the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        path = Path(self.config.socket_path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        # A socket file left by a dead daemon would make bind() fail;
        # a *live* daemon holds the listener, so unlinking is safe.
        with contextlib.suppress(OSError):
            path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(path)
        )
        listen_bound = None
        if self.config.listen is not None:
            _kind, host, port = wire.parse_address(self.config.listen)
            self._tcp_server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
            self.tcp_port = self._tcp_server.sockets[0].getsockname()[1]
            listen_bound = f"{host}:{self.tcp_port}"
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._sampler_task = asyncio.create_task(
            self._sample_loop(), name="serve-telemetry"
        )
        self.journal.record(
            "serve_start",
            socket=str(path),
            listen=listen_bound,
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            hot_capacity=self.config.hot_capacity,
        )

    def request_stop(self) -> None:
        """Ask the daemon to drain and stop (safe from any thread)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stop.set)

    async def run(self) -> None:
        """Start, serve until :meth:`request_stop`, then drain."""
        await self.start()
        await self.run_until_stopped()

    async def run_until_stopped(self) -> None:
        """After :meth:`start`: serve until :meth:`request_stop`, then drain."""
        await self._stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Finish all admitted work, then shut everything down cleanly.

        New submissions are rejected from the moment drain begins; every
        queued and in-flight cell completes; connected clients get up to
        a grace period to collect results and hang up before their
        connections are cancelled.  The socket file is removed last, so
        its absence means the daemon is truly gone.
        """
        if self._draining:
            return
        self._draining = True
        self.journal.record(
            "serve_drain",
            queue_depth=self._queue.qsize(),
            in_flight=len(self._inflight),
        )
        self._server.close()
        await self._server.wait_closed()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        await self._queue.join()
        for _ in self._workers:
            self._queue.put_nowait(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                self._conn_tasks, timeout=5.0
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sampler_task
        self._dump_flight("drain")
        self.journal.record(
            "serve_stop",
            executed=sum(self._executed.values()),
            coalesced=self._coalesced,
            rejected=self._rejected,
        )
        self.journal.close()
        with contextlib.suppress(OSError):
            Path(self.config.socket_path).unlink()

    # ------------------------------------------------------------------
    # Telemetry (sampler loop, gauges, flight recorder)
    # ------------------------------------------------------------------

    async def _sample_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sample_interval)
            self.sample_now()

    def sample_now(self) -> float:
        """One wall-clock telemetry sample (the daemon's clock mode)."""
        return self.sampler.sample(now=time.time())

    def _telemetry_gauges(self) -> dict[str, float]:
        """Live state folded into gauges at every sample and scrape."""
        gauges = {
            "serve.queue_depth": (
                self._queue.qsize() if self._queue is not None else 0
            ),
            "serve.in_flight": len(self._inflight),
            "serve.workers_busy": self._busy_workers,
            "serve.subscribers": len(self._subscribers),
            "result_cache.hot_entries": len(self.cache),
        }
        if self.cache.disk is not None:
            gauges["result_cache.disk_entries"] = len(self.cache.disk)
        return gauges

    def _observe_event(self, entry: dict) -> None:
        """Journal hook: metrics mirror, flight recording, then broadcast.

        Runs on whichever thread journaled (executor threads included),
        so everything here must be thread-safe -- the flight recorder
        locks internally, counter increments are single dict ops.
        """
        event = entry.get("event")
        if event == "task_finish":
            self.metrics.inc(
                "serve.references", entry.get("references", 0)
            )
            self.metrics.inc(
                "serve.network_bits", entry.get("total_bits", 0)
            )
        if event in ("serve_start", "serve_drain", "serve_stop"):
            self.flight.record("lifecycle", event)
        for kind, name, fields in incident_entries(entry):
            self.flight.record(kind, name, **fields)
        if (
            event == "task_failed"
            and entry.get("error_class") == "CoherenceError"
        ):
            self._dump_flight("coherence-error")
        self._event_from_any_thread(entry)

    def _note_rejection(self) -> None:
        """Track rejection timing; a burst dumps the flight recorder."""
        now = time.monotonic()
        self._reject_times.append(now)
        if (
            len(self._reject_times) == self.config.reject_burst
            and now - self._reject_times[0] <= _REJECT_BURST_WINDOW
        ):
            self._reject_times.clear()
            self._dump_flight("reject-burst")

    def _dump_flight(self, reason: str) -> Path | None:
        """Dump the flight ring to ``flight_dir``; None when unconfigured.

        The ring records regardless; only the *writing* needs a target
        directory.  Dumps are journaled (the ``flight_dump`` entry maps
        to no incident, so this cannot recurse).
        """
        flight_dir = self.config.flight_dir
        if flight_dir is None:
            return None
        with self._flight_lock:
            seq = self._flight_seq
            self._flight_seq += 1
        path = Path(flight_dir) / f"flight-{seq:03d}-{reason}.jsonl"
        self.flight.dump(path, reason=reason)
        self.metrics.inc("serve.flight_dumps")
        self.journal.record(
            "flight_dump", reason=reason, path=str(path),
            events=len(self.flight),
        )
        return path

    # ------------------------------------------------------------------
    # Event broadcast (journal -> subscribed submissions)
    # ------------------------------------------------------------------

    def _event_from_any_thread(self, entry: dict) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._dispatch_event, entry)

    def _dispatch_event(self, entry: dict) -> None:
        task = entry.get("task")
        if not task:
            return
        for queue in self._subscribers.get(task, ()):
            queue.put_nowait({"type": "event", **entry})

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            spec, future, enqueued_at = item
            self.metrics.set_gauge(
                "serve.queue_depth", self._queue.qsize()
            )
            self.metrics.observe(
                "latency.admit_to_start_ms",
                (time.monotonic() - enqueued_at) * 1000.0,
                LATENCY_BUCKETS_MS,
            )
            self._busy_workers += 1
            try:
                report_dict = await asyncio.to_thread(self._execute, spec)
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                spec_hash = spec.spec_hash
                self._executed[spec_hash] = (
                    self._executed.get(spec_hash, 0) + 1
                )
                self.metrics.inc("serve.executed")
                if not future.done():
                    future.set_result(report_dict)
            finally:
                self._busy_workers -= 1
                self._inflight.pop(spec.spec_hash, None)
                self._queue.task_done()

    def _execute(self, spec: ExperimentSpec) -> dict:
        """One cell, in a worker thread, through the real executor.

        The cell lands in the tiered cache *before* it leaves the
        in-flight table (the worker pops in-flight only after this
        returns), so there is no window in which a concurrent submission
        of the same hash could trigger a second execution.
        """
        task_fn = self.config.task_fn
        if self.config.stream_artifacts:
            task_fn = self._task_with_artifacts
        executor = Executor(
            workers=self.config.exec_workers,
            retries=self.config.retries,
            journal=self.journal,
            task_fn=task_fn,
            metrics=self.metrics,
        )
        result = executor.run([spec])[0]
        self.cache.put(spec, result.report)
        return result.report.to_dict()

    def _task_with_artifacts(self, spec: ExperimentSpec):
        """Task body for ``stream_artifacts``: run, then broadcast heatmaps.

        The heatmap frame rides the same subscriber queues as progress
        events, so every submission covering the task receives it --
        cache and coalescing semantics are untouched (artifacts stream
        only for *fresh* executions; cached cells re-serve reports, not
        heatmaps).
        """
        from repro.obs.hooks import execute_spec_with_heatmaps

        report, heatmaps = execute_spec_with_heatmaps(spec)
        self.metrics.inc("serve.artifacts")
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(
                self._dispatch_artifact, spec.spec_hash, heatmaps
            )
        return report

    def _dispatch_artifact(self, spec_hash: str, heatmaps: dict) -> None:
        prefix = spec_hash[:_HASH_PREFIX]
        for queue in self._subscribers.get(prefix, ()):
            queue.put_nowait(
                {
                    "type": "artifact",
                    "task": prefix,
                    "spec_hash": spec_hash,
                    "heatmaps": heatmaps,
                }
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    raw = await wire.read_frame_bytes(reader)
                    if raw is None:
                        break
                    parsed = self._parse_memo.get(raw)
                    if parsed is not None:
                        # Byte-identical resubmission: skip the JSON
                        # decode and the spec re-construction outright.
                        self._parse_memo.move_to_end(raw)
                        await self._handle_submit(parsed, writer, lock)
                        continue
                    frame = wire.decode_frame(raw)
                except FrameError as exc:
                    await self._send(
                        writer, lock, {"type": "error", "error": str(exc)}
                    )
                    break
                op = frame.get("op")
                if op == "ping":
                    await self._send(
                        writer,
                        lock,
                        {"type": "pong", "draining": self._draining},
                    )
                elif op == "status":
                    await self._send(writer, lock, self._status_payload())
                elif op == "metrics":
                    await self._send(
                        writer, lock, self._metrics_payload()
                    )
                elif op == "drain":
                    self.request_stop()
                    await self._send(writer, lock, {"type": "draining"})
                elif op == "submit":
                    try:
                        parsed = self._parse_submit(frame, raw)
                    except ConfigurationError as exc:
                        self.journal.record(
                            "serve_invalid", error=str(exc)
                        )
                        await self._send(
                            writer,
                            lock,
                            {
                                "type": "error",
                                "error": str(exc),
                                "id": frame.get("id"),
                            },
                        )
                    else:
                        await self._handle_submit(parsed, writer, lock)
                else:
                    await self._send(
                        writer,
                        lock,
                        {"type": "error", "error": f"unknown op {op!r}"},
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing left to tell it
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _send(writer, lock: asyncio.Lock, payload: dict) -> None:
        async with lock:
            await wire.write_frame(writer, payload)

    @staticmethod
    async def _send_raw(writer, lock: asyncio.Lock, raw: bytes) -> None:
        async with lock:
            writer.write(raw)
            await writer.drain()

    def _result_frame(
        self, spec_hash: str, prefix: str, source: str, report
    ) -> bytes:
        """The encoded ``result`` frame for a cache-served cell.

        Encoded once per ``(spec_hash, source)`` and reused verbatim --
        the frame has no per-submission fields, so every later serve of
        the same cell is byte-identical by construction.  Bounded by
        ``hot_capacity`` entries, evicted least-recently-served.
        """
        key = (spec_hash, source)
        raw = self._frame_cache.get(key)
        if raw is not None:
            self._frame_cache.move_to_end(key)
            return raw
        raw = wire.encode_frame(
            {
                "type": "result",
                "task": prefix,
                "spec_hash": spec_hash,
                "source": source,
                "report": report.to_dict(),
            }
        )
        self._frame_cache[key] = raw
        while len(self._frame_cache) > self.config.hot_capacity:
            self._frame_cache.popitem(last=False)
        return raw

    def _status_payload(self) -> dict:
        self.metrics.set_gauge("serve.queue_depth", self._queue.qsize())
        return {
            "type": "status",
            "draining": self._draining,
            "queue_depth": self._queue.qsize(),
            "in_flight": len(self._inflight),
            "workers_busy": self._busy_workers,
            "executed": dict(sorted(self._executed.items())),
            "coalesced": self._coalesced,
            "rejected": self._rejected,
            "admission": {
                "accepted": self._accepted,
                "coalesced": self._coalesced,
                "max_queue": self.config.max_queue,
                "rejected": self._rejected,
                "requests": self.metrics.counters.get(
                    "serve.requests", 0
                ),
            },
            "cache": self.cache.stats(),
            "result_cache": {
                name: value
                for name, value in sorted(self.metrics.counters.items())
                if name.startswith("result_cache.")
            },
            "counts": self.journal.counts(),
            "metrics": self.metrics.to_dict(),
        }

    def _metrics_payload(self) -> dict:
        """The ``metrics`` op: exposition text, registry, rings, flight.

        Takes a fresh sample first, so a scrape always reflects *now*
        (and single scrapes work even between sampler ticks).
        """
        self.sample_now()
        return {
            "type": "metrics",
            "draining": self._draining,
            "text": prometheus_text(self.metrics),
            "metrics": self.metrics.to_dict(),
            "series": self.sampler.to_dict(),
            "flight": {
                "events": len(self.flight),
                "dropped": self.flight.dropped,
                "dumps": self.flight.dumps,
            },
        }

    # ------------------------------------------------------------------

    def _parse_submit(self, frame: dict, raw: bytes) -> tuple:
        """Validate a submit frame into ``(name, specs, id, stream)``.

        Memoised on the exact wire bytes (see ``_parse_memo``); a
        malformed frame raises before anything is cached.  The specs
        list is shared across repeats -- safe because every spec is a
        frozen dataclass and ``_handle_submit`` only reads it.
        """
        name, specs = wire.parse_submit_cells(frame)
        parsed = (
            name,
            specs,
            frame.get("id"),
            bool(frame.get("stream", True)),
        )
        if len(raw) <= _PARSE_MEMO_MAX_FRAME:
            self._parse_memo[raw] = parsed
            while len(self._parse_memo) > _PARSE_MEMO_ENTRIES:
                self._parse_memo.popitem(last=False)
        return parsed

    async def _handle_submit(self, parsed, writer, lock) -> None:
        received_at = time.monotonic()
        self.metrics.inc("serve.requests")
        name, specs, request_id, stream_events = parsed

        # Resolve every unique cell: cache hit, in-flight join, or new
        # execution -- in that order, so duplicates are never queued.
        unique: dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash, spec)
        resolution: dict[str, tuple[str, object]] = {}
        to_queue: list[tuple[str, ExperimentSpec]] = []
        for spec_hash, spec in unique.items():
            inflight = self._inflight.get(spec_hash)
            if inflight is not None:
                resolution[spec_hash] = ("coalesced", inflight)
                continue
            report, tier = self.cache.lookup(spec)
            if report is not None:
                resolution[spec_hash] = (tier, report)
                continue
            to_queue.append((spec_hash, spec))

        # Admission control: all-or-nothing, with an explicit reason.
        reason = None
        if self._draining:
            reason = "draining: daemon is shutting down"
        elif (
            to_queue
            and self._queue.qsize() + len(to_queue) > self.config.max_queue
        ):
            reason = (
                f"queue full: {self._queue.qsize()} pending + "
                f"{len(to_queue)} new exceeds max_queue="
                f"{self.config.max_queue}"
            )
        if reason is not None:
            self._rejected += 1
            self.metrics.inc("serve.rejected")
            self.journal.record(
                "serve_reject", reason=reason, tasks=len(specs)
            )
            self._note_rejection()
            await self._send(
                writer,
                lock,
                {"type": "rejected", "reason": reason, "id": request_id},
            )
            return

        for spec_hash, spec in to_queue:
            future = self._loop.create_future()
            # A submission whose clients all disconnect still completes;
            # retrieving the exception here silences the "never
            # retrieved" warning for that orphaned case.
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            self._inflight[spec_hash] = future
            resolution[spec_hash] = ("queued", future)
            self._queue.put_nowait((spec, future, time.monotonic()))
        self.metrics.set_gauge("serve.queue_depth", self._queue.qsize())
        coalesced = sum(
            1 for source, _ in resolution.values() if source == "coalesced"
        )
        cached = sum(
            1
            for source, _ in resolution.values()
            if source in ("hot", "disk")
        )
        self._coalesced += coalesced
        self._accepted += 1
        self.metrics.inc("serve.accepted")
        if coalesced:
            self.metrics.inc("serve.coalesced", coalesced)
        self.metrics.observe(
            "latency.submit_to_admit_ms",
            (time.monotonic() - received_at) * 1000.0,
            LATENCY_BUCKETS_MS,
        )
        self.journal.record(
            "serve_accept",
            name=name,
            tasks=len(specs),
            unique=len(unique),
            queued=len(to_queue),
            coalesced=coalesced,
            cached=cached,
        )
        await self._send(
            writer,
            lock,
            {
                "type": "accepted",
                "id": request_id,
                "name": name,
                "tasks": len(specs),
                "unique": len(unique),
                "queued": len(to_queue),
                "coalesced": coalesced,
                "cached": cached,
            },
        )

        # Progress streaming: subscribe this submission to its task
        # prefixes, then seed the stream with one admission event per
        # unique cell so every client learns how each cell is satisfied
        # even when execution finished long ago.
        prefixes = {
            spec_hash[:_HASH_PREFIX] for spec_hash in unique
        }
        events_queue: asyncio.Queue | None = None
        forwarder: asyncio.Task | None = None
        if stream_events:
            events_queue = asyncio.Queue()
            for prefix in prefixes:
                self._subscribers.setdefault(prefix, set()).add(
                    events_queue
                )
            forwarder = asyncio.create_task(
                self._forward_events(events_queue, writer, lock)
            )
            for spec_hash, (source, _value) in resolution.items():
                events_queue.put_nowait(
                    {
                        "type": "event",
                        "event": f"task_{source}",
                        "task": spec_hash[:_HASH_PREFIX],
                    }
                )

        failed = 0
        try:
            for spec in specs:
                spec_hash = spec.spec_hash
                source, value = resolution[spec_hash]
                prefix = spec_hash[:_HASH_PREFIX]
                if source in ("hot", "disk"):
                    await self._send_raw(
                        writer,
                        lock,
                        self._result_frame(
                            spec_hash, prefix, source, value
                        ),
                    )
                    continue
                try:
                    # shield: cancelling this handler (client gone)
                    # must not cancel the shared execution future.
                    report_dict = await asyncio.shield(value)
                except Exception as exc:
                    failed += 1
                    payload = {
                        "type": "error",
                        "task": prefix,
                        "spec_hash": spec_hash,
                        "error": str(exc),
                    }
                else:
                    payload = {
                        "type": "result",
                        "task": prefix,
                        "spec_hash": spec_hash,
                        "source": source,
                        "report": report_dict,
                    }
                await self._send(writer, lock, payload)
        finally:
            if events_queue is not None:
                for prefix in prefixes:
                    subscribers = self._subscribers.get(prefix)
                    if subscribers is not None:
                        subscribers.discard(events_queue)
                        if not subscribers:
                            self._subscribers.pop(prefix, None)
                events_queue.put_nowait(None)
                with contextlib.suppress(asyncio.CancelledError):
                    await forwarder
        await self._send(
            writer,
            lock,
            {
                "type": "done",
                "id": request_id,
                "name": name,
                "tasks": len(specs),
                "queued": len(to_queue),
                "coalesced": coalesced,
                "cached": cached,
                "failed": failed,
            },
        )

    async def _forward_events(self, queue, writer, lock) -> None:
        dead = False
        while True:
            entry = await queue.get()
            if entry is None:
                return
            if dead:
                continue
            try:
                await self._send(writer, lock, entry)
            except (ConnectionResetError, BrokenPipeError):
                dead = True  # keep draining so the sentinel arrives


class DaemonThread:
    """A :class:`ServeDaemon` on a private event loop in a thread.

    The in-process deployment shape: benchmarks and tests start a real
    daemon (real socket, real protocol) without managing a subprocess.
    ``start`` blocks until the socket is accepting; ``stop`` drains and
    joins.  Usable as a context manager.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.daemon = ServeDaemon(config)
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self, timeout: float = 10.0) -> "DaemonThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError(
                f"serve daemon did not start within {timeout:g}s"
            )
        if self._failure is not None:
            raise ServeError(
                f"serve daemon failed to start: {self._failure!r}"
            ) from self._failure
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start() or stop()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.daemon.start()
        self._ready.set()
        await self.daemon.run_until_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        self.daemon.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServeError(
                f"serve daemon did not drain within {timeout:g}s"
            )

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
