"""Sharded serving: a spec-hash router over a fleet of serve daemons.

One :class:`~repro.serve.daemon.ServeDaemon` is one event loop -- its
coalescing table, caches and workers all live in a single process, which
caps aggregate throughput at whatever one interpreter can decode and
execute.  :class:`ServeRouter` scales the same protocol out: it owns the
client-facing endpoints (unix socket, optional TCP ``--listen``), spawns
``shards`` daemon subprocesses each bound to a private unix socket, and
forwards every submission cell to the shard that owns its spec hash.

The routing function is the whole consistency argument, borrowed from
the paper's own discipline of distributing directory state to the node
that owns the block: ``shard_for`` maps a spec's content hash to a shard
index, so *every* submission of a given cell -- from any client, over
any transport, at any time -- lands on the same shard.  In-flight
coalescing, exactly-once execution and the result cache therefore stay
correct per shard with **zero cross-shard coordination**: no locks, no
gossip, no shared state between shards.

Frames stream through, they are not buffered: the router reads each
shard frame once (to learn its type), then relays the *original bytes*
to the client (:func:`~repro.serve.protocol.read_frame_raw`), so
progress events, results and heatmap-artifact frames flow at shard
speed regardless of payload size.  Two throughput measures keep the
router off the critical path (this is what ``serve_sharded_n64``
gates): shard connections are pooled router-wide and reused across
submissions (a daemon connection carries any number of sequential
requests), and a submission whose cells all land on one shard is
relayed *verbatim* -- the client's own frame bytes go to the shard and
every response frame comes back untouched, with no re-encoding and no
aggregation arithmetic.

Supervision: every shard is restarted on crash with a deterministic
exponential backoff (``restart_backoff * 2**(restarts-1)``, capped),
up to ``max_restarts`` times.  A submission caught mid-stream by a
shard crash receives per-cell ``error`` frames for the unanswered
cells (the client's submission still terminates with ``done``), and a
resubmission after the restart re-executes and returns byte-identical
results.  Draining SIGTERMs every shard, which runs the daemon's own
graceful drain; the router socket is unlinked last.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, FrameError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import prometheus_text
from repro.runner.journal import _HASH_PREFIX
from repro.serve import protocol as wire

#: Hex digits of the spec hash used for shard selection.  Eight digits
#: (32 bits) spread uniformly; using a *prefix* keeps the mapping stable
#: under any future hash-length change.
_SHARD_HASH_DIGITS = 8

#: Connect-to-shard retry schedule (pure function of the attempt
#: number): enough total delay to bridge a shard restart window.
_SHARD_CONNECT_RETRIES = 7
_SHARD_CONNECT_BACKOFF = 0.05

#: Ceiling for the supervisor's exponential restart backoff.
_RESTART_BACKOFF_CAP = 5.0

#: How long a spawned shard may take to bind its socket.
_SPAWN_TIMEOUT = 30.0

#: Idle shard connections kept per shard for reuse; beyond this,
#: checked-in connections are simply closed.
_POOL_CAP = 32

#: Route-plan memo bounds (see ``ServeRouter._plan_submit``): keys are
#: raw frame bytes, values hold the pre-encoded per-shard subframes,
#: so both knobs bound memory.
_ROUTE_MEMO_ENTRIES = 32
_ROUTE_MEMO_MAX_FRAME = 256 * 1024


def shard_for(spec_hash: str, n_shards: int) -> int:
    """The shard that owns ``spec_hash`` -- stable, uniform, stateless."""
    return int(spec_hash[:_SHARD_HASH_DIGITS], 16) % n_shards


@dataclass(frozen=True)
class RouterConfig:
    """Everything a :class:`ServeRouter` needs, as frozen data.

    ``socket_path`` / ``listen`` are the *client-facing* endpoints;
    shard daemons bind private unix sockets under ``shard_dir``
    (default: ``<socket_path>.shards/``).  The executor-shaped knobs
    (``workers``, ``exec_workers``, ``max_queue``, ``hot_capacity``,
    ``retries``, cache and expiry settings) are forwarded to every
    shard; ``cache_dir`` and ``journal_dir`` get one subdirectory /
    file per shard so the stores stay disjoint.  ``restart_backoff`` /
    ``max_restarts`` bound crash recovery.
    """

    socket_path: str | Path
    shards: int = 4
    listen: str | None = None
    shard_dir: str | Path | None = None
    workers: int = 2
    exec_workers: int = 0
    max_queue: int = 64
    hot_capacity: int = 256
    cache_dir: str | Path | None = None
    journal_dir: str | Path | None = None
    retries: int = 1
    sample_interval: float = 1.0
    disk_max_bytes: int | None = None
    disk_max_age: float | None = None
    stream_artifacts: bool = False
    restart_backoff: float = 0.25
    max_restarts: int = 5

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"router shards must be >= 1, got {self.shards}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"shard workers must be >= 1, got {self.workers}"
            )
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.restart_backoff <= 0:
            raise ConfigurationError(
                f"restart_backoff must be > 0, got {self.restart_backoff}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.listen is not None:
            kind = wire.parse_address(self.listen)
            if kind[0] != "tcp":
                raise ConfigurationError(
                    f"listen must be a tcp host:port, got {self.listen!r}"
                )

    def resolved_shard_dir(self) -> Path:
        if self.shard_dir is not None:
            return Path(self.shard_dir)
        return Path(f"{self.socket_path}.shards")


class ShardProcess:
    """One shard: a ``repro serve`` subprocess on a private unix socket."""

    def __init__(self, index: int, config: RouterConfig) -> None:
        self.index = index
        self.config = config
        self.socket_path = (
            config.resolved_shard_dir() / f"shard-{index}.sock"
        )
        self.log_path = config.resolved_shard_dir() / f"shard-{index}.log"
        self.process: asyncio.subprocess.Process | None = None
        self.restarts = 0
        self.alive = False
        self.gave_up = False

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def _command(self) -> list[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket", str(self.socket_path),
            "--workers", str(config.workers),
            "--exec-workers", str(config.exec_workers),
            "--max-queue", str(config.max_queue),
            "--hot-capacity", str(config.hot_capacity),
            "--sample-interval", str(config.sample_interval),
        ]
        if config.cache_dir is not None:
            argv += [
                "--cache-dir",
                str(Path(config.cache_dir) / f"shard-{self.index}"),
            ]
        if config.journal_dir is not None:
            argv += [
                "--journal",
                str(Path(config.journal_dir) / f"shard-{self.index}.jsonl"),
            ]
        if config.disk_max_bytes is not None:
            argv += ["--disk-max-bytes", str(config.disk_max_bytes)]
        if config.disk_max_age is not None:
            argv += ["--disk-max-age", str(config.disk_max_age)]
        if config.stream_artifacts:
            argv += ["--stream-artifacts"]
        return argv

    async def spawn(self) -> None:
        """Start the subprocess and wait until its socket accepts."""
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        env = dict(os.environ)
        # The shard must import the same repro package as the router,
        # wherever it lives (a source tree, a wheel, a test venv).
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing
            if existing
            else package_root
        )
        with open(self.log_path, "ab") as log:
            self.process = await asyncio.create_subprocess_exec(
                *self._command(),
                stdout=log,
                stderr=asyncio.subprocess.STDOUT,
                env=env,
            )
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        while not self.socket_path.exists():
            if self.process.returncode is not None:
                raise ServeError(
                    f"shard {self.index} exited with "
                    f"{self.process.returncode} before binding "
                    f"{self.socket_path} (see {self.log_path})"
                )
            if time.monotonic() > deadline:
                raise ServeError(
                    f"shard {self.index} did not bind {self.socket_path} "
                    f"within {_SPAWN_TIMEOUT:g}s (see {self.log_path})"
                )
            await asyncio.sleep(0.02)
        self.alive = True

    async def terminate(self, timeout: float = 30.0) -> None:
        """SIGTERM the shard (its own graceful drain) and wait."""
        self.alive = False
        process = self.process
        if process is None or process.returncode is not None:
            return
        with contextlib.suppress(ProcessLookupError):
            process.send_signal(signal.SIGTERM)
        try:
            await asyncio.wait_for(process.wait(), timeout)
        except asyncio.TimeoutError:
            with contextlib.suppress(ProcessLookupError):
                process.kill()
            await process.wait()


class ServeRouter:
    """The client-facing endpoint over a supervised shard fleet.

    Lifecycle mirrors :class:`~repro.serve.daemon.ServeDaemon`:
    :meth:`start` spawns the shards and binds the endpoints,
    :meth:`run_until_stopped` serves until :meth:`request_stop`, then
    :meth:`drain`\\ s.  Only :meth:`request_stop` is thread-safe.
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.shards = [
            ShardProcess(index, config) for index in range(config.shards)
        ]
        self.tcp_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._supervisors: list[asyncio.Task] = []
        # Router-wide free lists of idle shard connections, one per
        # shard index.  A daemon connection serves requests strictly in
        # sequence, so a connection is either checked out (owned by one
        # in-flight submission) or idle here -- never shared.
        self._pools: dict[int, list[tuple]] = {}
        # Route plans keyed by the submission's exact wire bytes: the
        # shard split is a pure function of the frame (and the fixed
        # shard count), so byte-identical resubmissions -- the steady
        # state of polling sweep clients -- skip the JSON decode, the
        # per-cell hashing and the subframe re-encode entirely.
        self._route_memo: "OrderedDict[bytes, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        shard_dir = self.config.resolved_shard_dir()
        shard_dir.mkdir(parents=True, exist_ok=True)
        if self.config.journal_dir is not None:
            Path(self.config.journal_dir).mkdir(
                parents=True, exist_ok=True
            )
        await asyncio.gather(
            *(shard.spawn() for shard in self.shards)
        )
        self._supervisors = [
            asyncio.create_task(
                self._supervise(shard), name=f"shard-supervisor-{shard.index}"
            )
            for shard in self.shards
        ]
        path = Path(self.config.socket_path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(path)
        )
        if self.config.listen is not None:
            _kind, host, port = wire.parse_address(self.config.listen)
            self._tcp_server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
            self.tcp_port = self._tcp_server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Ask the router to drain and stop (safe from any thread)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stop.set)

    async def run(self) -> None:
        await self.start()
        await self.run_until_stopped()

    async def run_until_stopped(self) -> None:
        await self._stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop admitting, drain every shard, unlink the socket last."""
        if self._draining:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        # In-progress submissions need live shards to finish: give the
        # connection handlers a grace period before tearing down.
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                self._conn_tasks, timeout=30.0
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        for index in list(self._pools):
            self._close_pool(index)
        for supervisor in self._supervisors:
            supervisor.cancel()
        await asyncio.gather(
            *self._supervisors, return_exceptions=True
        )
        await asyncio.gather(
            *(shard.terminate() for shard in self.shards)
        )
        with contextlib.suppress(OSError):
            Path(self.config.socket_path).unlink()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    async def _supervise(self, shard: ShardProcess) -> None:
        """Restart ``shard`` on crash, with bounded exponential backoff."""
        while True:
            await shard.process.wait()
            self._close_pool(shard.index)
            if self._draining:
                return
            shard.alive = False
            self.metrics.inc("router.shard_exits")
            if shard.restarts >= self.config.max_restarts:
                shard.gave_up = True
                self.metrics.inc("router.shards_gave_up")
                return
            shard.restarts += 1
            delay = min(
                self.config.restart_backoff
                * (2 ** (shard.restarts - 1)),
                _RESTART_BACKOFF_CAP,
            )
            await asyncio.sleep(delay)
            if self._draining:
                return
            try:
                await shard.spawn()
            except ServeError:
                # Spawn itself failed; loop around and treat it as
                # another exit (the restart budget still bounds this).
                continue
            self.metrics.inc("router.shard_restarts")

    async def _connect_shard(
        self, shard: ShardProcess
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Connect to a shard, retrying across a restart window."""
        attempt = 0
        while True:
            try:
                return await asyncio.open_unix_connection(
                    str(shard.socket_path)
                )
            except OSError as exc:
                attempt += 1
                if shard.gave_up or attempt > _SHARD_CONNECT_RETRIES:
                    raise ServeError(
                        f"shard {shard.index} unavailable: {exc}"
                    ) from None
                await asyncio.sleep(
                    _SHARD_CONNECT_BACKOFF * (2 ** (attempt - 1))
                )

    # ------------------------------------------------------------------
    # Shard connection pool
    # ------------------------------------------------------------------

    def _checkin(self, index: int, conn: tuple) -> None:
        """Return an idle, healthy shard connection to the free list."""
        pool = self._pools.setdefault(index, [])
        if self._draining or len(pool) >= _POOL_CAP:
            conn[1].close()
            return
        pool.append(conn)

    def _close_pool(self, index: int) -> None:
        for conn in self._pools.pop(index, []):
            conn[1].close()

    async def _shard_first(
        self, index: int, raw: bytes
    ) -> tuple[tuple, dict, bytes]:
        """Send ``raw`` to shard ``index``; read the first answer frame.

        Prefers a pooled connection; a pooled connection that fails
        before answering is assumed stale (the shard restarted under
        it) and the exchange is retried exactly once on a fresh dial.
        Returns ``(conn, first_payload, first_raw)`` with ``conn``
        checked out -- the caller must check it back in or close it.
        """
        shard = self.shards[index]
        pool = self._pools.get(index)
        conn = pool.pop() if pool else None
        fresh = conn is None
        if conn is None:
            conn = await self._connect_shard(shard)
        while True:
            reader, writer = conn
            try:
                writer.write(raw)
                await writer.drain()
                got = await wire.read_frame_raw(reader)
            except (FrameError, ConnectionError, OSError) as exc:
                writer.close()
                if fresh:
                    raise ServeError(f"shard {index}: {exc}") from None
                fresh = True
                conn = await self._connect_shard(shard)
                continue
            if got is None:
                writer.close()
                if fresh:
                    raise ServeError(
                        f"shard {index} closed before answering"
                    )
                fresh = True
                conn = await self._connect_shard(shard)
                continue
            payload, first_raw = got
            return conn, payload, first_raw

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    raw = await wire.read_frame_bytes(reader)
                    if raw is None:
                        break
                    plan = self._route_memo.get(raw)
                    if plan is not None:
                        # Byte-identical resubmission: route it without
                        # decoding, hashing or re-encoding anything.
                        self._route_memo.move_to_end(raw)
                        await self._handle_submit(
                            plan, raw, writer, lock
                        )
                        continue
                    frame = wire.decode_frame(raw)
                except FrameError as exc:
                    await self._send(
                        writer, lock, {"type": "error", "error": str(exc)}
                    )
                    break
                op = frame.get("op")
                if op == "ping":
                    await self._send(
                        writer,
                        lock,
                        {
                            "type": "pong",
                            "draining": self._draining,
                            "router": True,
                            "shards": self.config.shards,
                        },
                    )
                elif op == "status":
                    await self._send(
                        writer, lock, await self._status_payload()
                    )
                elif op == "metrics":
                    await self._send(
                        writer, lock, await self._metrics_payload()
                    )
                elif op == "drain":
                    self.request_stop()
                    await self._send(writer, lock, {"type": "draining"})
                elif op == "submit":
                    try:
                        plan = self._plan_submit(frame, raw)
                    except ConfigurationError as exc:
                        await self._send(
                            writer,
                            lock,
                            {
                                "type": "error",
                                "error": str(exc),
                                "id": frame.get("id"),
                            },
                        )
                    else:
                        await self._handle_submit(
                            plan, raw, writer, lock
                        )
                else:
                    await self._send(
                        writer,
                        lock,
                        {"type": "error", "error": f"unknown op {op!r}"},
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing left to tell it
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _send(writer, lock: asyncio.Lock, payload: dict) -> None:
        async with lock:
            await wire.write_frame(writer, payload)

    @staticmethod
    async def _relay(writer, lock: asyncio.Lock, raw: bytes) -> None:
        async with lock:
            writer.write(raw)
            await writer.drain()

    # ------------------------------------------------------------------
    # Submission fan-out
    # ------------------------------------------------------------------

    def _plan_submit(self, frame: dict, raw: bytes) -> tuple:
        """Split a submission by owning shard, memoised on wire bytes.

        The plan is ``(name, request_id, n_cells, hashes, subframes)``
        where ``hashes`` maps shard index to the spec hashes it owns
        and ``subframes`` holds the pre-encoded per-shard submit frame
        -- or ``None`` when every cell lands on one shard, which is
        the verbatim-relay fast path.  Cell order is preserved within
        each shard (the shard streams results in cell order, keeping
        the relayed stream deterministic per shard), and cells are
        forwarded exactly as received: the shard is the validation
        authority, the router only routes by hash.  A malformed frame
        raises before anything is memoised.
        """
        name, cells, cell_hashes = wire.route_submit_cells(frame)
        request_id = frame.get("id")
        groups: dict[int, list] = {}
        owned: dict[int, set] = {}
        for cell, cell_hash in zip(cells, cell_hashes):
            index = shard_for(cell_hash, self.config.shards)
            groups.setdefault(index, []).append(cell)
            owned.setdefault(index, set()).add(cell_hash)
        hashes = {
            index: frozenset(group) for index, group in owned.items()
        }
        subframes: dict[int, bytes] | None = None
        if len(groups) > 1:
            stream_events = bool(frame.get("stream", True))
            subframes = {
                index: wire.encode_frame(
                    {
                        "op": "submit",
                        "name": name,
                        "stream": stream_events,
                        "cells": groups[index],
                        "id": request_id,
                    }
                )
                for index in groups
            }
        plan = (name, request_id, len(cells), hashes, subframes)
        if len(raw) <= _ROUTE_MEMO_MAX_FRAME:
            self._route_memo[raw] = plan
            while len(self._route_memo) > _ROUTE_MEMO_ENTRIES:
                self._route_memo.popitem(last=False)
        return plan

    async def _handle_submit(self, plan, raw, writer, lock) -> None:
        self.metrics.inc("router.requests")
        name, request_id, n_cells, hashes, subframes = plan
        if self._draining:
            self.metrics.inc("router.rejected")
            await self._send(
                writer,
                lock,
                {
                    "type": "rejected",
                    "reason": "draining: router is shutting down",
                    "id": request_id,
                },
            )
            return

        if subframes is None:
            (index,) = hashes
            await self._submit_single(
                index, request_id, raw, hashes[index], writer, lock
            )
            return

        shard_conns: dict[int, tuple] = {}

        def drop_conn(index: int) -> None:
            conn = shard_conns.pop(index, None)
            if conn is not None:
                conn[1].close()

        async def open_one(index: int) -> dict:
            conn, first, _raw = await self._shard_first(
                index, subframes[index]
            )
            shard_conns[index] = conn
            return first

        indices = sorted(subframes)
        firsts = await asyncio.gather(
            *(open_one(index) for index in indices),
            return_exceptions=True,
        )

        # First-frame barrier: the client protocol promises exactly one
        # accepted/rejected/error frame before any streaming.  If any
        # shard refuses, the whole submission refuses (all-or-nothing,
        # matching the daemon's own admission) and the accepted shards'
        # connections are dropped -- their work completes harmlessly
        # into their caches.
        refusal = None
        for index, first in zip(indices, firsts):
            if isinstance(first, BaseException):
                refusal = refusal or {
                    "type": "error",
                    "error": str(first),
                    "id": request_id,
                }
            elif first.get("type") == "rejected":
                refusal = refusal or {
                    "type": "rejected",
                    "reason": (
                        f"shard {index}: {first.get('reason')}"
                    ),
                    "id": request_id,
                }
            elif first.get("type") != "accepted":
                refusal = refusal or {
                    "type": "error",
                    "error": (
                        f"shard {index}: {first.get('error', first)}"
                    ),
                    "id": request_id,
                }
        if refusal is not None:
            for index in indices:
                drop_conn(index)
            if refusal["type"] == "rejected":
                self.metrics.inc("router.rejected")
            await self._send(writer, lock, refusal)
            return

        accepted = {
            "type": "accepted",
            "id": request_id,
            "name": name,
            "tasks": n_cells,
            "unique": sum(first["unique"] for first in firsts),
            "queued": sum(first["queued"] for first in firsts),
            "coalesced": sum(first["coalesced"] for first in firsts),
            "cached": sum(first["cached"] for first in firsts),
        }
        self.metrics.inc("router.accepted")
        await self._send(writer, lock, accepted)

        counts = {"failed": 0}

        async def pump(index: int) -> None:
            shard_reader = shard_conns[index][0]
            pending = set(hashes[index])
            try:
                while True:
                    shard_raw = await wire.read_frame_bytes(shard_reader)
                    if shard_raw is None:
                        raise ServeError(
                            f"shard {index} closed mid-submission"
                        )
                    # Tail-peek instead of JSON-decoding: the relay
                    # only needs the kind (and, for result/error, the
                    # hash to retire); the payload stays opaque.  Only
                    # the one ``done`` frame is decoded, for counts.
                    kind = wire.peek_frame_type(shard_raw)
                    if kind == "done":
                        payload = wire.decode_frame(shard_raw)
                        counts["failed"] += payload.get("failed", 0)
                        conn = shard_conns.pop(index)
                        self._checkin(index, conn)
                        return
                    if kind in ("result", "error"):
                        pending.discard(wire.peek_spec_hash(shard_raw))
                    await self._relay(writer, lock, shard_raw)
            except (FrameError, ConnectionError, OSError, ServeError) as exc:
                # Shard lost mid-stream (crash, restart): answer every
                # still-pending cell with an error frame so the client's
                # submission terminates deterministically.
                drop_conn(index)
                self.metrics.inc("router.relay_breaks")
                for spec_hash in sorted(pending):
                    counts["failed"] += 1
                    await self._send(
                        writer,
                        lock,
                        {
                            "type": "error",
                            "task": spec_hash[:_HASH_PREFIX],
                            "spec_hash": spec_hash,
                            "error": (
                                f"shard {index} connection lost: {exc}"
                            ),
                        },
                    )

        await asyncio.gather(*(pump(index) for index in indices))
        await self._send(
            writer,
            lock,
            {
                "type": "done",
                "id": request_id,
                "name": name,
                "tasks": n_cells,
                "queued": accepted["queued"],
                "coalesced": accepted["coalesced"],
                "cached": accepted["cached"],
                "failed": counts["failed"],
            },
        )

    async def _submit_single(
        self, index, request_id, raw, pending_hashes, writer, lock
    ) -> None:
        """Fast path: every cell owned by one shard -> verbatim relay.

        The client's own frame bytes go to the shard and every response
        frame (``accepted`` through ``done``) is relayed untouched --
        the shard's answer for the whole submission *is* the router's
        answer, bit for bit.  Only a mid-stream connection loss makes
        the router speak for itself: per-cell ``error`` frames for the
        unanswered cells, then a synthesised ``done``.
        """
        try:
            conn, first, first_raw = await self._shard_first(index, raw)
        except ServeError as exc:
            await self._send(
                writer,
                lock,
                {"type": "error", "error": str(exc), "id": request_id},
            )
            return
        if first.get("type") != "accepted":
            if first.get("type") == "rejected":
                self.metrics.inc("router.rejected")
            self._checkin(index, conn)
            await self._relay(writer, lock, first_raw)
            return
        self.metrics.inc("router.accepted")
        await self._relay(writer, lock, first_raw)
        pending = set(pending_hashes)
        shard_reader = conn[0]
        try:
            while True:
                shard_raw = await wire.read_frame_bytes(shard_reader)
                if shard_raw is None:
                    raise ServeError(
                        f"shard {index} closed mid-submission"
                    )
                # Tail-peek, never decode: result payloads relay as
                # opaque bytes; only the kind steers the loop.
                kind = wire.peek_frame_type(shard_raw)
                if kind in ("result", "error"):
                    pending.discard(wire.peek_spec_hash(shard_raw))
                await self._relay(writer, lock, shard_raw)
                if kind == "done":
                    self._checkin(index, conn)
                    return
        except (FrameError, ConnectionError, OSError, ServeError) as exc:
            conn[1].close()
            self.metrics.inc("router.relay_breaks")
            failed = 0
            for spec_hash in sorted(pending):
                failed += 1
                await self._send(
                    writer,
                    lock,
                    {
                        "type": "error",
                        "task": spec_hash[:_HASH_PREFIX],
                        "spec_hash": spec_hash,
                        "error": (
                            f"shard {index} connection lost: {exc}"
                        ),
                    },
                )
            await self._send(
                writer,
                lock,
                {
                    "type": "done",
                    "id": request_id,
                    "name": first.get("name"),
                    "tasks": first.get("tasks"),
                    "queued": first.get("queued"),
                    "coalesced": first.get("coalesced"),
                    "cached": first.get("cached"),
                    "failed": failed,
                },
            )

    # ------------------------------------------------------------------
    # Aggregation (status / metrics ops)
    # ------------------------------------------------------------------

    async def _shard_roundtrip(
        self, shard: ShardProcess, op: str
    ) -> dict | None:
        """One ``op`` round trip on an ephemeral shard connection."""
        try:
            shard_reader, shard_writer = await self._connect_shard(shard)
        except ServeError:
            return None
        try:
            await wire.write_frame(shard_writer, {"op": op})
            return await wire.read_frame(shard_reader)
        except (FrameError, ConnectionError, OSError):
            return None
        finally:
            shard_writer.close()
            with contextlib.suppress(Exception):
                await shard_writer.wait_closed()

    def _shard_info(self, frames: list) -> list[dict]:
        info = []
        for shard, frame in zip(self.shards, frames):
            counters = (
                frame.get("metrics", {}).get("counters", {})
                if isinstance(frame, dict)
                else {}
            )
            info.append(
                {
                    "index": shard.index,
                    "alive": shard.alive and frame is not None,
                    "restarts": shard.restarts,
                    "gave_up": shard.gave_up,
                    "pid": shard.pid,
                    "requests": counters.get("serve.requests", 0),
                    "executed": counters.get("serve.executed", 0),
                }
            )
        return info

    def _merged_registry(self, frames: list) -> MetricsRegistry:
        """Counters and histogram cells add; gauges sum across shards."""
        merged = MetricsRegistry()
        gauge_sums: dict[str, float] = {}
        for frame in frames:
            if not isinstance(frame, dict):
                continue
            registry = MetricsRegistry.from_dict(
                frame.get("metrics", {})
            )
            merged.merge(registry)
            for gauge_name, value in registry.gauges.items():
                gauge_sums[gauge_name] = (
                    gauge_sums.get(gauge_name, 0) + value
                )
        merged.merge(self.metrics)
        gauge_sums.update(self.metrics.gauges)
        merged.gauges.clear()
        merged.gauges.update(gauge_sums)
        return merged

    async def _status_payload(self) -> dict:
        frames = await asyncio.gather(
            *(
                self._shard_roundtrip(shard, "status")
                for shard in self.shards
            )
        )
        executed: dict[str, int] = {}
        sums = {
            "queue_depth": 0,
            "in_flight": 0,
            "workers_busy": 0,
            "coalesced": 0,
            "rejected": 0,
        }
        admission = {"accepted": 0, "coalesced": 0, "rejected": 0,
                     "requests": 0, "max_queue": self.config.max_queue}
        cache: dict[str, int] = {}
        result_cache: dict[str, int] = {}
        journal_counts: dict[str, int] = {}
        for frame in frames:
            if not isinstance(frame, dict):
                continue
            for spec_hash, count in frame.get("executed", {}).items():
                executed[spec_hash] = executed.get(spec_hash, 0) + count
            for key in sums:
                sums[key] += frame.get(key, 0)
            for key in ("accepted", "coalesced", "rejected", "requests"):
                admission[key] += frame.get("admission", {}).get(key, 0)
            for key, value in frame.get("cache", {}).items():
                cache[key] = cache.get(key, 0) + value
            for key, value in frame.get("result_cache", {}).items():
                result_cache[key] = result_cache.get(key, 0) + value
            for key, value in frame.get("counts", {}).items():
                journal_counts[key] = journal_counts.get(key, 0) + value
        return {
            "type": "status",
            "router": True,
            "draining": self._draining,
            "shards": self._shard_info(frames),
            "executed": dict(sorted(executed.items())),
            "queue_depth": sums["queue_depth"],
            "in_flight": sums["in_flight"],
            "workers_busy": sums["workers_busy"],
            "coalesced": sums["coalesced"],
            "rejected": sums["rejected"],
            "admission": dict(sorted(admission.items())),
            "cache": dict(sorted(cache.items())),
            "result_cache": dict(sorted(result_cache.items())),
            "counts": dict(sorted(journal_counts.items())),
            "metrics": self._merged_registry(frames).to_dict(),
        }

    async def _metrics_payload(self) -> dict:
        frames = await asyncio.gather(
            *(
                self._shard_roundtrip(shard, "metrics")
                for shard in self.shards
            )
        )
        merged = self._merged_registry(frames)
        series: dict[str, dict] = {}
        for frame in frames:
            if not isinstance(frame, dict):
                continue
            for series_name, ring in frame.get("series", {}).items():
                into = series.setdefault(
                    series_name, {"ticks": [], "values": []}
                )
                ticks, values = ring.get("ticks", []), ring.get(
                    "values", []
                )
                if len(values) > len(into["values"]):
                    # Longest ring wins the timeline; shorter rings sum
                    # into its tail (aligned from the most recent tick).
                    into["ticks"], into["values"] = (
                        list(ticks),
                        list(values),
                    )
                    continue
                offset = len(into["values"]) - len(values)
                for position, value in enumerate(values):
                    into["values"][offset + position] += value
        flight = {"events": 0, "dropped": 0, "dumps": 0}
        for frame in frames:
            if not isinstance(frame, dict):
                continue
            for key in flight:
                flight[key] += frame.get("flight", {}).get(key, 0)
        return {
            "type": "metrics",
            "router": True,
            "draining": self._draining,
            "shards": self._shard_info(frames),
            "text": prometheus_text(merged),
            "metrics": merged.to_dict(),
            "series": {
                name: series[name] for name in sorted(series)
            },
            "flight": flight,
        }


class RouterThread:
    """A :class:`ServeRouter` on a private event loop in a thread.

    The in-process deployment shape for tests and benchmarks, mirroring
    :class:`~repro.serve.daemon.DaemonThread`: real sockets, real shard
    subprocesses, context-manager lifecycle.
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.router = ServeRouter(config)
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-router", daemon=True
        )

    def start(self, timeout: float = 60.0) -> "RouterThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError(
                f"serve router did not start within {timeout:g}s"
            )
        if self._failure is not None:
            raise ServeError(
                f"serve router failed to start: {self._failure!r}"
            ) from self._failure
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start() or stop()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.router.start()
        self._ready.set()
        await self.router.run_until_stopped()

    def stop(self, timeout: float = 60.0) -> None:
        self.router.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServeError(
                f"serve router did not drain within {timeout:g}s"
            )

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
