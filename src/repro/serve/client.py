"""A blocking client for the serve daemon (unix socket or TCP).

:class:`ServeClient` speaks the length-prefixed JSON protocol over a
unix socket or a TCP connection (``host:port`` addresses, see
:func:`~repro.serve.protocol.parse_address`) with one connection per
call -- the simplest shape that is correct, and what ``repro submit``
and the CI smoke tests use.  Used as a context manager the client
instead holds one connection open and runs every operation over it in
sequence (the daemon and router both serve any number of requests per
connection), which is what the throughput benchmarks do; a broken
exchange closes the connection so the next call dials fresh.  Each :meth:`submit` collects the full
exchange (``accepted``, streamed ``event`` frames, per-cell
``result``/``error`` frames, ``done``) into a :class:`SubmitOutcome`; a
daemon ``rejected`` answer raises
:class:`~repro.errors.OverloadedError` so callers cannot mistake
backpressure for results.

Connecting retries a refused or not-yet-bound endpoint on a
deterministic exponential backoff schedule (``connect_backoff *
2**(attempt-1)``, the same non-wall-clock idiom as the executor's retry
delays), which closes the startup race where ``repro submit`` launched
right after ``repro serve`` could die on ``ConnectionRefusedError``
before the daemon binds.

The client is intentionally dependency-free and synchronous: anything
async enough to want a non-blocking client can speak
:mod:`repro.serve.protocol` directly over asyncio streams (that is all
the daemon's own tests do).
"""

from __future__ import annotations

import contextlib
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from collections import OrderedDict

from repro.errors import ConfigurationError, OverloadedError, ServeError
from repro.runner.spec import ExperimentSpec
from repro.serve.protocol import (
    encode_frame,
    parse_address,
    read_frame_sync,
    write_frame_sync,
)

#: Encoded-submission memo bounds (see :meth:`ServeClient.submit`):
#: entries map ``(name, stream, spec hashes)`` to the encoded frame, so
#: both knobs bound memory.
_SUBMIT_MEMO_ENTRIES = 16
_SUBMIT_MEMO_MAX_FRAME = 256 * 1024


@dataclass
class SubmitOutcome:
    """Everything one submission produced, in arrival order.

    ``results`` holds the per-cell ``result`` frames in cell order
    (``reports()`` unwraps just the report dicts); ``errors`` the
    per-cell ``error`` frames; ``events`` every streamed progress
    frame; ``artifacts`` any streamed heatmap-artifact frames (daemons
    started with ``--stream-artifacts``).
    """

    accepted: dict
    done: dict | None = None
    results: list[dict] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    artifacts: list[dict] = field(default_factory=list)

    def reports(self) -> list[dict]:
        """The serialised reports, one per successful cell, in order."""
        return [frame["report"] for frame in self.results]

    @property
    def failed(self) -> bool:
        return bool(self.errors)


class ServeClient:
    """Blocking client; one connection per operation.

    ``address`` is a unix socket path or a TCP ``host:port``
    (:func:`~repro.serve.protocol.parse_address` decides which).
    ``connect_retries`` extra connection attempts are made when the
    endpoint refuses or does not exist yet, sleeping
    ``connect_backoff * 2**(attempt-1)`` seconds between attempts -- a
    schedule that is a pure function of the attempt number, mirroring
    the executor's retry backoff.
    """

    def __init__(
        self,
        address: str | Path,
        *,
        timeout: float = 60.0,
        connect_retries: int = 5,
        connect_backoff: float = 0.05,
    ) -> None:
        if connect_retries < 0:
            raise ConfigurationError(
                f"connect_retries must be >= 0, got {connect_retries}"
            )
        if connect_backoff < 0:
            raise ConfigurationError(
                f"connect_backoff must be >= 0, got {connect_backoff}"
            )
        self.address = parse_address(str(address))
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self._sock: socket.socket | None = None
        self._stream = None
        # Encoded submissions keyed by (name, stream, spec hashes):
        # the hash is the content, so equal keys encode to equal bytes
        # and a poll loop resubmitting the same sweep skips the
        # serialisation entirely.
        self._submit_memo: "OrderedDict[tuple, bytes]" = OrderedDict()

    @property
    def socket_path(self) -> str:
        """The endpoint, printable (kept for backwards compatibility)."""
        if self.address[0] == "unix":
            return self.address[1]
        return f"{self.address[1]}:{self.address[2]}"

    # ------------------------------------------------------------------

    def _backoff_for(self, attempt: int) -> float:
        """Delay before connect attempt ``attempt`` (1-based retries)."""
        if self.connect_backoff <= 0:
            return 0.0
        return self.connect_backoff * (2 ** (attempt - 1))

    def _connect_once(self) -> socket.socket:
        if self.address[0] == "tcp":
            return socket.create_connection(
                (self.address[1], self.address[2]), timeout=self.timeout
            )
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.address[1])
        except OSError:
            sock.close()
            raise
        return sock

    def _connect(self) -> socket.socket:
        attempt = 0
        while True:
            try:
                return self._connect_once()
            except (ConnectionRefusedError, FileNotFoundError):
                attempt += 1
                if attempt > self.connect_retries:
                    raise
                time.sleep(self._backoff_for(attempt))

    # ------------------------------------------------------------------
    # Persistent mode (context manager)
    # ------------------------------------------------------------------

    def __enter__(self) -> "ServeClient":
        """Open one connection; subsequent calls reuse it in sequence."""
        self._sock = self._connect()
        self._stream = self._sock.makefile("rwb")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the persistent connection (no-op in per-call mode)."""
        if self._stream is not None:
            with contextlib.suppress(OSError):
                self._stream.close()
            self._stream = None
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    @contextlib.contextmanager
    def _exchange(self):
        """The stream for one request/response exchange.

        Per-call mode dials, yields and closes; persistent mode yields
        the held stream, closing it only if the exchange breaks (a
        half-finished exchange would desynchronise the framing).
        """
        if self._stream is not None:
            try:
                yield self._stream
            except BaseException:
                self.close()
                raise
            return
        with self._connect() as sock, sock.makefile("rwb") as stream:
            yield stream

    def _roundtrip(self, request: dict) -> dict:
        """Send one request, read exactly one response frame."""
        with self._exchange() as stream:
            write_frame_sync(stream, request)
            frame = read_frame_sync(stream)
        if frame is None:
            raise ServeError(
                f"daemon at {self.socket_path} closed the connection "
                f"without answering {request.get('op')!r}"
            )
        return frame

    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` frame."""
        return self._roundtrip({"op": "ping"})

    def status(self) -> dict:
        """The daemon's full status snapshot (see docs/SERVE.md)."""
        return self._roundtrip({"op": "status"})

    def metrics(self) -> dict:
        """The ``/metrics`` frame: exposition text, registry, rings.

        ``frame["text"]`` is Prometheus-style plaintext;
        ``frame["metrics"]`` / ``frame["series"]`` / ``frame["flight"]``
        are the structured forms ``repro top`` renders.
        """
        return self._roundtrip({"op": "metrics"})

    def drain(self) -> dict:
        """Ask the daemon to drain and shut down; returns its ack."""
        return self._roundtrip({"op": "drain"})

    # ------------------------------------------------------------------

    def submit(
        self,
        cells: Sequence[ExperimentSpec],
        *,
        name: str = "submit",
        stream: bool = True,
        on_event: Callable[[dict], None] | None = None,
    ) -> SubmitOutcome:
        """Submit ``cells`` and block until every result has streamed back.

        ``on_event`` observes each progress frame as it arrives (they
        are also collected in the outcome).  Raises
        :class:`~repro.errors.OverloadedError` if the daemon rejects the
        submission (queue full, or draining) and
        :class:`~repro.errors.ServeError` on a malformed exchange.

        The encoded request is memoised by content (the spec hashes):
        resubmitting the same sweep -- a poll loop, a benchmark client
        -- reuses the previously serialised bytes, which also keeps
        the frame byte-identical across repeats so the daemon- and
        router-side wire memos hit.
        """
        key = (
            name,
            bool(stream),
            tuple(spec.spec_hash for spec in cells),
        )
        raw = self._submit_memo.get(key)
        if raw is None:
            raw = encode_frame(
                {
                    "op": "submit",
                    "name": name,
                    "stream": bool(stream),
                    "cells": [spec.to_dict() for spec in cells],
                }
            )
            if len(raw) <= _SUBMIT_MEMO_MAX_FRAME:
                self._submit_memo[key] = raw
                while len(self._submit_memo) > _SUBMIT_MEMO_ENTRIES:
                    self._submit_memo.popitem(last=False)
        else:
            self._submit_memo.move_to_end(key)
        with self._exchange() as stream_io:
            stream_io.write(raw)
            stream_io.flush()
            first = read_frame_sync(stream_io)
            if first is None:
                raise ServeError(
                    f"daemon at {self.socket_path} closed the "
                    f"connection before answering the submission"
                )
            if first.get("type") == "rejected":
                raise OverloadedError(
                    f"submission rejected: {first.get('reason')}"
                )
            if first.get("type") == "error":
                raise ServeError(
                    f"submission refused: {first.get('error')}"
                )
            if first.get("type") != "accepted":
                raise ServeError(
                    f"expected an 'accepted' frame, got {first!r}"
                )
            outcome = SubmitOutcome(accepted=first)
            while True:
                frame = read_frame_sync(stream_io)
                if frame is None:
                    raise ServeError(
                        "connection closed before the 'done' frame"
                    )
                kind = frame.get("type")
                if kind == "event":
                    outcome.events.append(frame)
                    if on_event is not None:
                        on_event(frame)
                elif kind == "artifact":
                    outcome.artifacts.append(frame)
                elif kind == "result":
                    outcome.results.append(frame)
                elif kind == "error":
                    outcome.errors.append(frame)
                elif kind == "done":
                    outcome.done = frame
                    return outcome
                else:
                    raise ServeError(
                        f"unexpected frame type {kind!r} mid-submission"
                    )
