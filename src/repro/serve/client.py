"""A blocking client for the serve daemon.

:class:`ServeClient` speaks the length-prefixed JSON protocol over a
unix socket with one connection per call -- the simplest shape that is
correct, and what ``repro submit`` and the CI smoke test use.  Each
:meth:`submit` collects the full exchange (``accepted``, streamed
``event`` frames, per-cell ``result``/``error`` frames, ``done``) into a
:class:`SubmitOutcome`; a daemon ``rejected`` answer raises
:class:`~repro.errors.OverloadedError` so callers cannot mistake
backpressure for results.

The client is intentionally dependency-free and synchronous: anything
async enough to want a non-blocking client can speak
:mod:`repro.serve.protocol` directly over asyncio streams (that is all
the daemon's own tests do).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import OverloadedError, ServeError
from repro.runner.spec import ExperimentSpec
from repro.serve.protocol import read_frame_sync, write_frame_sync


@dataclass
class SubmitOutcome:
    """Everything one submission produced, in arrival order.

    ``results`` holds the per-cell ``result`` frames in cell order
    (``reports()`` unwraps just the report dicts); ``errors`` the
    per-cell ``error`` frames; ``events`` every streamed progress frame.
    """

    accepted: dict
    done: dict | None = None
    results: list[dict] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    def reports(self) -> list[dict]:
        """The serialised reports, one per successful cell, in order."""
        return [frame["report"] for frame in self.results]

    @property
    def failed(self) -> bool:
        return bool(self.errors)


class ServeClient:
    """Blocking unix-socket client; one connection per operation."""

    def __init__(
        self, socket_path: str | Path, *, timeout: float = 60.0
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def _roundtrip(self, request: dict) -> dict:
        """Send one request, read exactly one response frame."""
        with self._connect() as sock, sock.makefile("rwb") as stream:
            write_frame_sync(stream, request)
            frame = read_frame_sync(stream)
        if frame is None:
            raise ServeError(
                f"daemon at {self.socket_path} closed the connection "
                f"without answering {request.get('op')!r}"
            )
        return frame

    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe; returns the ``pong`` frame."""
        return self._roundtrip({"op": "ping"})

    def status(self) -> dict:
        """The daemon's full status snapshot (see docs/SERVE.md)."""
        return self._roundtrip({"op": "status"})

    def metrics(self) -> dict:
        """The ``/metrics`` frame: exposition text, registry, rings.

        ``frame["text"]`` is Prometheus-style plaintext;
        ``frame["metrics"]`` / ``frame["series"]`` / ``frame["flight"]``
        are the structured forms ``repro top`` renders.
        """
        return self._roundtrip({"op": "metrics"})

    def drain(self) -> dict:
        """Ask the daemon to drain and shut down; returns its ack."""
        return self._roundtrip({"op": "drain"})

    # ------------------------------------------------------------------

    def submit(
        self,
        cells: Sequence[ExperimentSpec],
        *,
        name: str = "submit",
        stream: bool = True,
        on_event: Callable[[dict], None] | None = None,
    ) -> SubmitOutcome:
        """Submit ``cells`` and block until every result has streamed back.

        ``on_event`` observes each progress frame as it arrives (they
        are also collected in the outcome).  Raises
        :class:`~repro.errors.OverloadedError` if the daemon rejects the
        submission (queue full, or draining) and
        :class:`~repro.errors.ServeError` on a malformed exchange.
        """
        request = {
            "op": "submit",
            "name": name,
            "stream": bool(stream),
            "cells": [spec.to_dict() for spec in cells],
        }
        with self._connect() as sock, sock.makefile("rwb") as stream_io:
            write_frame_sync(stream_io, request)
            first = read_frame_sync(stream_io)
            if first is None:
                raise ServeError(
                    f"daemon at {self.socket_path} closed the "
                    f"connection before answering the submission"
                )
            if first.get("type") == "rejected":
                raise OverloadedError(
                    f"submission rejected: {first.get('reason')}"
                )
            if first.get("type") == "error":
                raise ServeError(
                    f"submission refused: {first.get('error')}"
                )
            if first.get("type") != "accepted":
                raise ServeError(
                    f"expected an 'accepted' frame, got {first!r}"
                )
            outcome = SubmitOutcome(accepted=first)
            while True:
                frame = read_frame_sync(stream_io)
                if frame is None:
                    raise ServeError(
                        "connection closed before the 'done' frame"
                    )
                kind = frame.get("type")
                if kind == "event":
                    outcome.events.append(frame)
                    if on_event is not None:
                        on_event(frame)
                elif kind == "result":
                    outcome.results.append(frame)
                elif kind == "error":
                    outcome.errors.append(frame)
                elif kind == "done":
                    outcome.done = frame
                    return outcome
                else:
                    raise ServeError(
                        f"unexpected frame type {kind!r} mid-submission"
                    )
