"""Shared elementary types used across the :mod:`repro` package.

The simulator models a shared-memory multiprocessor in which ``N`` processors
(each with a private cache) are connected to ``N`` memory modules through an
``N x N`` omega network.  The types here pin down the vocabulary used
everywhere else:

* a *node* is a network endpoint (cache or memory module), identified by an
  integer in ``range(N)``;
* memory is word addressed; a *block* is an aligned group of words and the
  unit of caching and coherence;
* an :class:`Address` names one word as ``(block, offset)``.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

#: Identifier of a cache / processor / memory module (network endpoint).
NodeId = int

#: Identifier of a memory block (the unit of caching and coherence).
BlockId = int


class Op(enum.Enum):
    """A processor memory operation."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Address(NamedTuple):
    """A word address, split into the block id and the word offset within it.

    Using the split form everywhere avoids repeated divmod arithmetic and
    makes it impossible to confuse word addresses with block ids.
    """

    block: BlockId
    offset: int

    @staticmethod
    def from_word(word_address: int, block_size: int) -> "Address":
        """Split a flat word address into ``(block, offset)``.

        ``block_size`` is the number of words per block and must be positive.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        block, offset = divmod(word_address, block_size)
        return Address(block, offset)

    def to_word(self, block_size: int) -> int:
        """Rebuild the flat word address given the block size in words."""
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if not 0 <= self.offset < block_size:
            raise ValueError(
                f"offset {self.offset} out of range for block size {block_size}"
            )
        return self.block * block_size + self.offset


class Reference(NamedTuple):
    """One memory reference in a trace: processor ``node`` performs ``op``
    on word ``address``; for writes, ``value`` is the datum stored.

    ``value`` is carried for reads too (ignored by the simulator) so traces
    round-trip through files without a per-op schema.
    """

    node: NodeId
    op: Op
    address: Address
    value: int = 0

    @property
    def is_write(self) -> bool:
        return self.op is Op.WRITE

    @property
    def is_read(self) -> bool:
        return self.op is Op.READ


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises ``ValueError`` for values that are not positive powers of two,
    because the omega-network math silently goes wrong on non-powers.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
