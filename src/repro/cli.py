"""Command-line interface: ``python -m repro <command>``.

Fourteen commands cover the common uses of the library without writing
code:

* ``tables``  -- regenerate the paper's Tables 2, 3 and 4 next to the
  published values;
* ``figures`` -- render the Figure 5/6/8 curves as ASCII charts;
* ``simulate`` -- run a generated workload (or a trace file) through a
  protocol on the verifying simulator and print the report;
* ``compare`` -- run one workload through every protocol and rank them;
* ``latency`` -- zero-contention cycles per reference, per protocol;
* ``sweep``   -- cost vs sharer count, executed through the
  :mod:`repro.runner` subsystem (``--workers`` fans cells out over
  processes, ``--cache-dir`` skips unchanged cells, ``--journal``
  records task events), optionally archived as JSON;
* ``perf``    -- the :mod:`repro.perf` microbenchmarks: cached-vs-cold
  equivalence checks always run; timings compare against the committed
  ``BENCH_perf.json`` baseline (see docs/PERF.md);
* ``chaos``   -- a fault-injection campaign (:mod:`repro.faults`):
  sweep message drop rates (plus optional duplicates, delays and dead
  links/switches) with invariants checked after every reference, and
  report survival (see docs/FAULTS.md);
* ``trace``   -- run one workload with a
  :class:`~repro.obs.recorder.TraceRecorder` attached and export the
  JSONL trace, the Perfetto-loadable Chrome trace and the heatmap JSON
  (see docs/OBSERVABILITY.md);
* ``heatmap`` -- run one workload and render the per-link / per-switch
  utilization grids as ASCII (optionally archived as JSON);
* ``serve``   -- run the :mod:`repro.serve` daemon on a unix socket:
  request coalescing by spec hash, two-tier result cache, bounded-queue
  admission control, streamed progress, graceful drain on SIGTERM
  (see docs/SERVE.md);
* ``submit``  -- submit the ``sweep`` grid to a running daemon instead
  of executing locally (plus ``--ping`` / ``--status`` / ``--metrics``
  / ``--drain`` daemon controls); same table out, so the CLI is just
  one client of the service;
* ``top``     -- live terminal view of a running daemon: request rates,
  p50/p90/p99 latency estimates, cache hit ratios and queue/fabric
  sparklines, refreshed from the daemon's ``metrics`` op (``--once``
  for the non-interactive single-frame mode);
* ``mc``      -- model-check the protocol (:mod:`repro.mc`): exhaustive
  breadth-first exploration of the abstract two-mode model with
  coherence/recovery invariants and minimal counterexample traces,
  plus ``--fuzz`` differential fuzzing of the model against the
  concrete simulator (see docs/MODELCHECK.md).

``sweep`` and ``chaos`` additionally accept ``--trace-dir`` to export
per-cell trace artifacts while the grid runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.compare import compare_protocols, default_factories
from repro.analysis.figures import (
    fig5_data,
    fig6_data,
    fig8_data,
    table2_data,
    table3_data,
    table4_data,
)
from repro.analysis.report import render_series
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace, load_trace
from repro.workloads.markov import markov_block_trace
from repro.workloads.synthetic import random_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Stenström's two-mode cache consistency "
            "protocol (ISCA 1989)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "tables", help="regenerate Tables 2-4 next to the paper's values"
    )

    figures = commands.add_parser(
        "figures", help="render the Figure 5/6/8 curves"
    )
    figures.add_argument(
        "--width", type=int, default=64, help="chart width in columns"
    )

    simulate = commands.add_parser(
        "simulate", help="run one workload through one protocol"
    )
    _add_workload_arguments(simulate)
    simulate.add_argument(
        "--protocol",
        choices=sorted(default_factories()),
        default="two-mode",
        help="protocol to drive (default: two-mode)",
    )

    compare = commands.add_parser(
        "compare", help="run one workload through every protocol"
    )
    _add_workload_arguments(compare)

    latency = commands.add_parser(
        "latency",
        help="zero-contention cycles per reference, per protocol",
    )
    _add_workload_arguments(latency)

    sweep = commands.add_parser(
        "sweep",
        help=(
            "cost vs sharer count across protocols, executed through "
            "the repro.runner subsystem (JSON-exportable)"
        ),
    )
    _add_sharer_grid_arguments(sweep)
    sweep.add_argument(
        "--output", help="write the records as JSON to this path"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = sequential in-process)",
    )
    sweep.add_argument(
        "--cache-dir",
        help="content-addressed result cache; re-runs only changed cells",
    )
    sweep.add_argument(
        "--journal",
        help="append task start/finish/retry events to this JSONL file",
    )
    sweep.add_argument(
        "--trace-dir",
        help=(
            "export per-cell trace + heatmap artifacts to this directory "
            "(bypasses the result cache)"
        ),
    )

    perf = commands.add_parser(
        "perf",
        help=(
            "run the perf microbenchmarks (trace replay, compiled "
            "replay, fast-path hit rate, batched replay, multicast "
            "fan-out, sweep throughput, serve hot cache) with "
            "equivalence checks, gate against the BENCH_perf.json "
            "baseline, and append a BENCH_history.jsonl row"
        ),
    )
    perf.add_argument(
        "--equivalence-only",
        action="store_true",
        help=(
            "assert cached == cold results but skip the timing gate "
            "(for CI machines whose timing is unreliable)"
        ),
    )
    perf.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the new baseline instead of comparing",
    )
    perf.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: BENCH_perf.json at the repo root)",
    )
    perf.add_argument(
        "--output",
        help="also write this run's results as JSON to this path",
    )
    perf.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    perf.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per benchmark (best is kept)",
    )
    perf.add_argument(
        "--only",
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "run only these comma-separated benchmarks (e.g. "
            "batched_replay_n1024); the baseline gate then skips "
            "benchmarks that were not run"
        ),
    )
    perf.add_argument(
        "--history",
        default=None,
        help=(
            "append this run's timestamped rates to this JSONL file "
            "(default: BENCH_history.jsonl at the repo root)"
        ),
    )
    perf.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending to the history file",
    )

    chaos = commands.add_parser(
        "chaos",
        help=(
            "fault-injection campaign: sweep drop rates (plus optional "
            "duplicates, delays, dead links/switches) with invariants "
            "checked every reference, and report survival"
        ),
    )
    chaos.add_argument(
        "--nodes", type=int, default=16, help="processors (power of two)"
    )
    chaos.add_argument(
        "--references", type=int, default=400, help="trace length per cell"
    )
    chaos.add_argument(
        "--write-fraction", type=float, default=0.3, help="w of §4"
    )
    chaos.add_argument(
        "--workload",
        choices=("random", "markov", "shared-structure"),
        default="random",
        help="generated workload kind (default: random)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    chaos.add_argument(
        "--drop-rates",
        type=float,
        nargs="+",
        default=[0.0, 0.02, 0.05, 0.1],
        help="message drop probabilities to sweep",
    )
    chaos.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.02,
        help="message duplication probability (every cell)",
    )
    chaos.add_argument(
        "--delay-rate",
        type=float,
        default=0.02,
        help="message delay probability (every cell)",
    )
    chaos.add_argument(
        "--kill-link",
        action="append",
        default=[],
        metavar="LEVEL:POSITION",
        help="declare a network link dead (repeatable)",
    )
    chaos.add_argument(
        "--kill-switch",
        action="append",
        default=[],
        metavar="STAGE:INDEX",
        help="declare a 2x2 switch dead (repeatable)",
    )
    chaos.add_argument(
        "--fault-seeds",
        type=int,
        nargs="+",
        default=[0],
        help="fault-injection RNG seeds to sweep",
    )
    chaos.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry budget per delivery before giving up",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = sequential in-process)",
    )
    chaos.add_argument(
        "--cache-dir",
        help="content-addressed result cache; re-runs only changed cells",
    )
    chaos.add_argument(
        "--journal",
        help="append task start/finish/retry events to this JSONL file",
    )
    chaos.add_argument(
        "--output", help="write the survival report as JSON to this path"
    )
    chaos.add_argument(
        "--trace-dir",
        help=(
            "export per-cell trace + heatmap artifacts to this directory "
            "(bypasses the result cache)"
        ),
    )

    trace = commands.add_parser(
        "trace",
        help=(
            "run one workload with tracing on and export JSONL, Chrome "
            "trace (Perfetto) and heatmap JSON artifacts"
        ),
    )
    _add_workload_arguments(trace)
    trace.add_argument(
        "--protocol",
        choices=sorted(default_factories()),
        default="two-mode",
        help="protocol to drive (default: two-mode)",
    )
    trace.add_argument(
        "--out",
        default="trace-out",
        help="directory receiving the artifacts (default: trace-out)",
    )

    heatmap = commands.add_parser(
        "heatmap",
        help=(
            "run one workload and render per-link / per-switch "
            "utilization as ASCII stage-by-position grids"
        ),
    )
    _add_workload_arguments(heatmap)
    heatmap.add_argument(
        "--protocol",
        choices=sorted(default_factories()),
        default="two-mode",
        help="protocol to drive (default: two-mode)",
    )
    heatmap.add_argument(
        "--json", help="also write all four heatmaps as JSON to this path"
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "run the experiment-serving daemon on a unix socket: "
            "coalescing, two-tier caching, admission control, graceful "
            "drain on SIGTERM; --shards N scales out to a spec-hash "
            "router over N daemon subprocesses (see docs/SERVE.md)"
        ),
    )
    serve.add_argument(
        "--socket",
        required=True,
        help="unix socket path to listen on (removed on clean drain)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "daemon shards behind a spec-hash router (1 = a single "
            "daemon, no router; default: 1)"
        ),
    )
    serve.add_argument(
        "--listen",
        help=(
            "also accept clients on this TCP host:port (same protocol; "
            "port 0 picks a free port).  No authentication -- bind on "
            "trusted networks only (see docs/SERVE.md)"
        ),
    )
    serve.add_argument(
        "--shard-dir",
        help=(
            "directory for per-shard sockets and logs "
            "(default: <socket>.shards/; only with --shards > 1)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrently executing cells (default: 2)",
    )
    serve.add_argument(
        "--exec-workers",
        type=int,
        default=0,
        help=(
            "worker processes per cell inside the executor "
            "(0 = in-process, the default)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help=(
            "admitted-but-not-started cell bound; submissions beyond it "
            "are rejected whole (default: 64)"
        ),
    )
    serve.add_argument(
        "--hot-capacity",
        type=int,
        default=256,
        help="in-memory LRU hot-tier entries (default: 256)",
    )
    serve.add_argument(
        "--cache-dir",
        help=(
            "disk tier behind the hot cache (content-addressed store); "
            "with --shards > 1 each shard gets its own subdirectory"
        ),
    )
    serve.add_argument(
        "--disk-max-bytes",
        type=int,
        help=(
            "byte budget for the disk tier: puts beyond it evict the "
            "least recently used entries (by mtime; default: unbounded)"
        ),
    )
    serve.add_argument(
        "--disk-max-age",
        type=float,
        help=(
            "expire disk-tier entries not written or read for this many "
            "seconds (default: never)"
        ),
    )
    serve.add_argument(
        "--journal",
        help=(
            "append fsynced daemon + task events to this JSONL file "
            "(the source of streamed progress); with --shards > 1 this "
            "is a directory receiving one journal per shard"
        ),
    )
    serve.add_argument(
        "--stream-artifacts",
        action="store_true",
        help=(
            "stream link/switch heatmaps of every fresh execution to "
            "subscribed clients as 'artifact' frames (in-process task "
            "body only)"
        ),
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help=(
            "telemetry sampling cadence in seconds "
            "(wall-clock; default: 1.0)"
        ),
    )
    serve.add_argument(
        "--flight-dir",
        help=(
            "directory for automatic flight-recorder JSONL dumps "
            "(coherence errors, rejection bursts, drain); the incident "
            "ring records even without this, but nothing is written"
        ),
    )
    serve.add_argument(
        "--flight-capacity",
        type=int,
        default=512,
        help="flight-recorder ring size in events (default: 512)",
    )

    submit = commands.add_parser(
        "submit",
        help=(
            "submit the sweep grid to a running serve daemon instead of "
            "executing locally (same table out)"
        ),
    )
    submit.add_argument(
        "--socket",
        required=True,
        help=(
            "daemon or router endpoint: a unix socket path, or a TCP "
            "host:port for daemons started with --listen"
        ),
    )
    _add_sharer_grid_arguments(submit)
    submit.add_argument(
        "--output",
        help=(
            "write spec hashes + full reports as deterministic JSON "
            "(byte-identical across clients for identical grids)"
        ),
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="socket timeout in seconds (default: 300)",
    )
    submit.add_argument(
        "--quiet-events",
        action="store_true",
        help="do not print streamed progress events",
    )
    submit.add_argument(
        "--ping",
        action="store_true",
        help="liveness-probe the daemon and exit",
    )
    submit.add_argument(
        "--status",
        action="store_true",
        help="print the daemon's status snapshot as JSON and exit",
    )
    submit.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "print the daemon's /metrics exposition (Prometheus-style "
            "plaintext) and exit"
        ),
    )
    submit.add_argument(
        "--drain",
        action="store_true",
        help="ask the daemon to drain and shut down, then exit",
    )

    top = commands.add_parser(
        "top",
        help=(
            "live terminal view of a running serve daemon: request "
            "rates, p50/p90/p99 latencies, cache hit ratios, queue and "
            "fabric sparklines (see docs/SERVE.md)"
        ),
    )
    top.add_argument(
        "--socket",
        required=True,
        help=(
            "daemon or router endpoint: a unix socket path, or a TCP "
            "host:port for daemons started with --listen"
        ),
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh interval in seconds (default: 2.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = until interrupted)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (non-interactive / CI mode)",
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds (default: 30)",
    )

    mc = commands.add_parser(
        "mc",
        help=(
            "model-check the two-mode protocol: exhaustive exploration "
            "with invariants + counterexample traces, and differential "
            "fuzzing against the simulator (see docs/MODELCHECK.md)"
        ),
    )
    mc.add_argument(
        "--nodes", type=int, default=2, help="model nodes (power of two)"
    )
    mc.add_argument(
        "--blocks", type=int, default=1, help="model blocks (default: 1)"
    )
    mc.add_argument(
        "--exhaustive",
        action="store_true",
        help="explore the full reachable space (no state cap)",
    )
    mc.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        help=(
            "visited-state cap when not --exhaustive (default: 200000)"
        ),
    )
    mc.add_argument(
        "--default-dw",
        action="store_true",
        help=(
            "blocks enter distributed-write mode on first load "
            "(default: global-read)"
        ),
    )
    mc.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="multicast re-send budget before degradation (default: 1)",
    )
    mc.add_argument(
        "--no-faults",
        action="store_true",
        help="disable the fault actions (degrade, partial delivery)",
    )
    mc.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="RUNS",
        help=(
            "also run this many differential-fuzz interleavings against "
            "the concrete simulator (0 = exploration only)"
        ),
    )
    mc.add_argument(
        "--fuzz-mode",
        choices=("none", "scripted", "dead", "mixed"),
        default="mixed",
        help="fault regime for the fuzz runs (default: mixed)",
    )
    mc.add_argument(
        "--fuzz-nodes",
        type=int,
        default=None,
        help="fuzzer system size (default: same as --nodes)",
    )
    mc.add_argument(
        "--fuzz-blocks",
        type=int,
        default=None,
        help="fuzzer block count (default: same as --blocks)",
    )
    mc.add_argument(
        "--ops",
        type=int,
        default=24,
        help="operations per fuzz run (default: 24)",
    )
    mc.add_argument("--seed", type=int, default=0, help="fuzzer seed")
    mc.add_argument(
        "--output",
        help="write the summary text to this path as well as stdout",
    )

    return parser


def _add_sharer_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The sharer-sweep grid knobs, shared by ``sweep`` and ``submit``."""
    parser.add_argument(
        "--nodes", type=int, default=64, help="processors (power of two)"
    )
    parser.add_argument(
        "--sharers",
        type=int,
        nargs="+",
        default=[2, 4, 8, 16],
        help="sharer counts to sweep",
    )
    parser.add_argument(
        "--write-fraction", type=float, default=0.3, help="w of §4"
    )
    parser.add_argument(
        "--references", type=int, default=2000, help="trace length"
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--nodes", type=int, default=16, help="processors (power of two)"
    )
    parser.add_argument(
        "--trace", help="trace file to replay (overrides the generator)"
    )
    parser.add_argument(
        "--workload",
        choices=("markov", "random"),
        default="markov",
        help="generated workload kind",
    )
    parser.add_argument(
        "--sharers", type=int, default=4, help="tasks sharing the block"
    )
    parser.add_argument(
        "--write-fraction", type=float, default=0.2, help="w of §4"
    )
    parser.add_argument(
        "--references", type=int, default=5000, help="trace length"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip value and invariant verification (faster)",
    )


def _make_trace(args: argparse.Namespace) -> Trace:
    if args.trace:
        return load_trace(args.trace)
    if args.workload == "markov":
        return markov_block_trace(
            args.nodes,
            tasks=list(range(args.sharers)),
            write_fraction=args.write_fraction,
            n_references=args.references,
            seed=args.seed,
        )
    return random_trace(
        args.nodes,
        args.references,
        write_fraction=args.write_fraction,
        seed=args.seed,
    )


def _command_tables(_args: argparse.Namespace) -> int:
    for table in (table2_data(), table3_data(), table4_data()):
        print(table.render())
        print()
    return 0


def _command_figures(args: argparse.Namespace) -> int:
    print(
        render_series(
            fig5_data(),
            title="Figure 5: schemes 1 vs 2 (N=1024, M=20)",
            width=args.width,
            log_x=True,
        )
    )
    print()
    print(
        render_series(
            fig6_data(),
            title="Figure 6: schemes 1, 2', 3 (N=1024, n1=128, M=20)",
            width=args.width,
            log_x=True,
        )
    )
    print()
    print(
        render_series(
            fig8_data(n_values=(4, 16)),
            title="Figure 8: normalized CC per reference vs w",
            width=args.width,
        )
    )
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    trace = _make_trace(args)
    config = SystemConfig(n_nodes=trace.n_nodes or args.nodes,
                          block_size_words=trace.block_size_words)
    factory = default_factories()[args.protocol]
    protocol = factory(System(config))
    report = run_trace(protocol, trace, verify=not args.no_verify)
    print(report.summary())
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    trace = _make_trace(args)
    config = SystemConfig(n_nodes=trace.n_nodes or args.nodes,
                          block_size_words=trace.block_size_words)
    comparison = compare_protocols(
        trace, config, verify=not args.no_verify
    )
    print(comparison.render())
    print(f"cheapest: {comparison.winner()}")
    return 0


def _command_latency(args: argparse.Namespace) -> int:
    from repro.analysis.latency import latency_comparison
    from repro.analysis.report import render_table

    trace = _make_trace(args)
    config = SystemConfig(n_nodes=trace.n_nodes or args.nodes,
                          block_size_words=trace.block_size_words)
    reports = latency_comparison(
        trace.references, config, default_factories()
    )
    rows = [
        (
            name,
            f"{report.mean_cycles:.1f}",
            f"{report.hit_fraction:.0%}",
            report.max_cycles,
        )
        for name, report in sorted(
            reports.items(), key=lambda item: item[1].mean_cycles
        )
    ]
    print(
        render_table(
            ("protocol", "cycles/ref", "hits", "worst reference"),
            rows,
            title=(
                f"zero-contention latency over {len(trace)} references"
            ),
        )
    )
    return 0


def _sharer_sweep(args: argparse.Namespace):
    """The sharer-sweep grid shared by ``sweep`` and ``submit``."""
    from repro.protocol.messages import MessageCosts
    from repro.runner import SweepSpec, WorkloadSpec

    workloads = [
        WorkloadSpec(
            kind="markov",
            n_nodes=args.nodes,
            n_references=args.references,
            write_fraction=args.write_fraction,
            seed=args.seed,
            tasks=tuple(range(n)),
        )
        for n in args.sharers
    ]
    return SweepSpec.from_grid(
        "cli-sharer-sweep",
        protocols=sorted(default_factories()),
        workloads=workloads,
        configs=[
            SystemConfig(
                n_nodes=args.nodes, costs=MessageCosts.uniform(20)
            )
        ],
    )


def _sharer_records(pairs):
    """``(spec, report)`` pairs -> sweep records for the shared table."""
    from repro.analysis.sweep import SweepRecord

    return [
        SweepRecord(
            protocol=spec.protocol,
            parameters=(("n_sharers", len(spec.workload.tasks)),),
            cost_per_reference=report.cost_per_reference,
            total_bits=report.network_total_bits,
            events=tuple(sorted(report.stats.events.items())),
        )
        for spec, report in pairs
    ]


def _print_sharer_table(records, args: argparse.Namespace) -> None:
    from repro.analysis.report import render_table
    from repro.analysis.sweep import series_by_protocol

    series = series_by_protocol(records, "n_sharers")
    names = sorted(series)
    rows = [
        (f"n={n}",)
        + tuple(f"{dict(series[name])[n]:.1f}" for name in names)
        for n in sorted(args.sharers)
    ]
    print(
        render_table(
            ("sharers",) + tuple(names),
            rows,
            title=(
                f"bits/reference vs sharers "
                f"(w={args.write_fraction}, N={args.nodes})"
            ),
        )
    )


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.records import save_records
    from repro.runner import Executor, ResultCache, RunJournal

    sweep = _sharer_sweep(args)
    journal = RunJournal(args.journal)
    executor = Executor(
        workers=args.workers,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        journal=journal,
        trace_dir=args.trace_dir,
    )
    results = executor.run(sweep)
    records = _sharer_records(
        [(result.spec, result.report) for result in results]
    )
    _print_sharer_table(records, args)
    counts = journal.counts()
    print(
        f"runner: {len(results)} cells, {counts['executed']} executed, "
        f"{counts['cached']} cached, {counts['retried']} retried "
        f"(workers={args.workers})"
    )
    if args.output:
        save_records(
            records,
            args.output,
            metadata={
                "write_fraction": args.write_fraction,
                "n_nodes": args.nodes,
                "references": args.references,
                "seed": args.seed,
                "sweep_hash": sweep.spec_hash,
            },
        )
        print(f"records written to {args.output}")
    journal.close()
    return 0


def _rate_delta(result, previous: dict | None) -> str:
    """This run's rate vs the last ``BENCH_history.jsonl`` row.

    Display-only (the enforced gate is the baseline comparison): the
    history row may come from another machine or Python version, so a
    delta here is a hint about when a rate moved, never a failure.
    """
    if not previous:
        return "-"
    rates = previous.get("rates")
    before = rates.get(result.name) if isinstance(rates, dict) else None
    if not isinstance(before, (int, float)) or before <= 0:
        return "-"
    return f"{(result.rate - before) / before:+.1%}"


def _command_perf(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.report import render_table
    from repro.perf import run_benchmarks
    from repro.perf.regress import (
        DEFAULT_BASELINE,
        DEFAULT_HISTORY,
        DEFAULT_THRESHOLD,
        append_history,
        compare_to_baseline,
        latest_history_row,
        load_baseline,
        results_payload,
        write_baseline,
    )

    from repro.errors import ConfigurationError

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    try:
        results = run_benchmarks(
            equivalence_only=args.equivalence_only,
            repeats=args.repeats,
            only=only,
        )
    except ConfigurationError as exc:
        print(f"perf: {exc}")
        return 2
    history_path = args.history or DEFAULT_HISTORY
    previous = latest_history_row(history_path)
    rows = [
        (
            result.name,
            f"{result.rate:,.0f} {result.unit}/s",
            _rate_delta(result, previous),
            f"{result.wall_time:.3f}s",
            "yes" if result.equivalent else "NO",
        )
        for result in results.values()
    ]
    print(
        render_table(
            ("benchmark", "rate", "vs last run", "wall", "cached == cold"),
            rows,
            title="perf microbenchmarks (pinned seeds)",
        )
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(results_payload(results), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"results written to {args.output}")
    if not args.no_history:
        history = append_history(results, history_path)
        print(f"history row appended to {history}")

    baseline_path = Path(args.baseline or DEFAULT_BASELINE)
    if args.write_baseline:
        written = write_baseline(results, baseline_path)
        print(f"baseline written to {written}")
        return 0
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path} "
            f"(run with --write-baseline to create one)"
        )
        return 0
    problems = compare_to_baseline(
        results,
        load_baseline(baseline_path),
        threshold=(
            DEFAULT_THRESHOLD if args.threshold is None else args.threshold
        ),
        check_timing=not args.equivalence_only,
        subset=only is not None,
    )
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}")
        return 1
    mode = "equivalence" if args.equivalence_only else "equivalence + timing"
    print(f"baseline {baseline_path}: pass ({mode})")
    return 0


def _parse_pairs(values: list[str], label: str) -> tuple[tuple[int, int], ...]:
    """``["1:3", "0:0"]`` -> ``((1, 3), (0, 0))`` with a usable error."""
    from repro.errors import ConfigurationError

    pairs = []
    for value in values:
        try:
            left, right = value.split(":")
            pairs.append((int(left), int(right)))
        except ValueError:
            raise ConfigurationError(
                f"bad {label} {value!r}: expected two integers as A:B"
            ) from None
    return tuple(pairs)


def _command_chaos(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.faults.campaign import chaos_cells, run_campaign
    from repro.runner import ResultCache, RunJournal

    cells = chaos_cells(
        n_nodes=args.nodes,
        n_references=args.references,
        write_fraction=args.write_fraction,
        workload_seed=args.seed,
        workload_kind=args.workload,
        drop_rates=tuple(args.drop_rates),
        duplicate_rate=args.duplicate_rate,
        delay_rate=args.delay_rate,
        dead_links=_parse_pairs(args.kill_link, "--kill-link"),
        dead_switches=_parse_pairs(args.kill_switch, "--kill-switch"),
        fault_seeds=tuple(args.fault_seeds),
        max_retries=args.max_retries,
    )
    journal = RunJournal(args.journal)
    report = run_campaign(
        cells,
        name="cli-chaos",
        workers=args.workers,
        cache=ResultCache(args.cache_dir) if args.cache_dir else None,
        journal=journal,
        trace_dir=args.trace_dir,
    )
    print(report.render())
    counts = journal.counts()
    print(
        f"runner: {len(report.cells)} cells, {counts['executed']} executed, "
        f"{counts['cached']} cached, {counts['failed']} failed "
        f"(workers={args.workers})"
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"survival report written to {args.output}")
    journal.close()
    if not report.survived:
        print("CHAOS: campaign FAILED (see rows marked NO)")
        return 1
    print("CHAOS: campaign survived (zero coherence violations)")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import (
        TraceRecorder,
        write_chrome_trace,
        write_heatmaps,
        write_jsonl,
    )

    trace = _make_trace(args)
    config = SystemConfig(n_nodes=trace.n_nodes or args.nodes,
                          block_size_words=trace.block_size_words)
    factory = default_factories()[args.protocol]
    protocol = factory(System(config))
    recorder = TraceRecorder()
    report = run_trace(
        protocol, trace, verify=not args.no_verify, recorder=recorder
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    paths = [
        write_jsonl(recorder, out / "trace.jsonl"),
        write_chrome_trace(
            recorder, out / "trace.chrome.json", process_name=args.protocol
        ),
        write_heatmaps(protocol.system.network, out / "heatmap.json"),
    ]
    print(report.summary())
    kinds = ", ".join(
        f"{name}={count}"
        for name, count in recorder.counts_by_kind().items()
    )
    print(f"trace             : {len(recorder)} events ({kinds})")
    for path in paths:
        print(f"written           : {path}")
    print(
        "open the .chrome.json file at https://ui.perfetto.dev "
        "(or chrome://tracing)"
    )
    return 0


def _command_heatmap(args: argparse.Namespace) -> int:
    from repro.obs import link_heatmap, switch_heatmap, write_heatmaps

    trace = _make_trace(args)
    config = SystemConfig(n_nodes=trace.n_nodes or args.nodes,
                          block_size_words=trace.block_size_words)
    factory = default_factories()[args.protocol]
    protocol = factory(System(config))
    run_trace(protocol, trace, verify=not args.no_verify)
    network = protocol.system.network
    for grid in (
        link_heatmap(network, "bits"),
        link_heatmap(network, "messages"),
        switch_heatmap(network, "messages"),
        switch_heatmap(network, "splits"),
    ):
        print(grid.render())
        print()
    if args.json:
        path = write_heatmaps(network, args.json)
        print(f"heatmaps written to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    if args.shards > 1:
        return _command_serve_router(args)

    from repro.serve.daemon import ServeConfig, ServeDaemon

    config = ServeConfig(
        socket_path=args.socket,
        workers=args.workers,
        exec_workers=args.exec_workers,
        max_queue=args.max_queue,
        hot_capacity=args.hot_capacity,
        cache_dir=args.cache_dir,
        journal_path=args.journal,
        sample_interval=args.sample_interval,
        flight_capacity=args.flight_capacity,
        flight_dir=args.flight_dir,
        listen=args.listen,
        disk_max_bytes=args.disk_max_bytes,
        disk_max_age=args.disk_max_age,
        stream_artifacts=args.stream_artifacts,
    )
    daemon = ServeDaemon(config)

    async def _main() -> None:
        await daemon.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, daemon.request_stop)
        listen = (
            f", tcp port {daemon.tcp_port}"
            if daemon.tcp_port is not None
            else ""
        )
        print(
            f"serving on {args.socket} "
            f"(workers={args.workers}, max_queue={args.max_queue}, "
            f"hot_capacity={args.hot_capacity}{listen})",
            flush=True,
        )
        await daemon.run_until_stopped()

    asyncio.run(_main())
    counts = daemon.journal.counts()
    print(
        f"drained: {counts['executed']} executed, "
        f"{daemon.cache.hot_hits} hot hits, "
        f"{daemon._coalesced} coalesced, "
        f"{daemon._rejected} rejected"
    )
    return 0


def _command_serve_router(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.router import RouterConfig, ServeRouter

    config = RouterConfig(
        socket_path=args.socket,
        shards=args.shards,
        listen=args.listen,
        shard_dir=args.shard_dir,
        workers=args.workers,
        exec_workers=args.exec_workers,
        max_queue=args.max_queue,
        hot_capacity=args.hot_capacity,
        cache_dir=args.cache_dir,
        journal_dir=args.journal,
        sample_interval=args.sample_interval,
        disk_max_bytes=args.disk_max_bytes,
        disk_max_age=args.disk_max_age,
        stream_artifacts=args.stream_artifacts,
    )
    router = ServeRouter(config)

    async def _main() -> None:
        await router.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, router.request_stop)
        listen = (
            f", tcp port {router.tcp_port}"
            if router.tcp_port is not None
            else ""
        )
        print(
            f"routing on {args.socket} across {args.shards} shards "
            f"(workers={args.workers} each, "
            f"max_queue={args.max_queue}{listen})",
            flush=True,
        )
        await router.run_until_stopped()

    asyncio.run(_main())
    counters = router.metrics.counters
    print(
        f"drained: {counters.get('router.requests', 0)} requests, "
        f"{counters.get('router.rejected', 0)} rejected, "
        f"{counters.get('router.shard_restarts', 0)} shard restarts"
    )
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.errors import OverloadedError
    from repro.serve.client import ServeClient
    from repro.sim.engine import SimulationReport

    client = ServeClient(args.socket, timeout=args.timeout)
    if args.ping:
        print(json.dumps(client.ping(), sort_keys=True))
        return 0
    if args.status:
        print(json.dumps(client.status(), indent=2, sort_keys=True))
        return 0
    if args.metrics:
        print(client.metrics()["text"], end="")
        return 0
    if args.drain:
        print(json.dumps(client.drain(), sort_keys=True))
        return 0

    sweep = _sharer_sweep(args)

    def show_event(frame: dict) -> None:
        task = frame.get("task", "?")
        label = frame.get("event", "event")
        extra = ""
        if frame.get("refs_per_sec") is not None:
            extra = f" ({frame['refs_per_sec']:,.0f} refs/s)"
        print(f"  event: {task} {label}{extra}")

    try:
        outcome = client.submit(
            list(sweep.cells),
            name=sweep.name,
            on_event=None if args.quiet_events else show_event,
        )
    except OverloadedError as exc:
        print(f"rejected: {exc}")
        return 3
    by_hash = {
        frame["spec_hash"]: frame["report"] for frame in outcome.results
    }
    pairs = [
        (spec, SimulationReport.from_dict(by_hash[spec.spec_hash]))
        for spec in sweep.cells
        if spec.spec_hash in by_hash
    ]
    records = _sharer_records(pairs)
    _print_sharer_table(records, args)
    accepted = outcome.accepted
    print(
        f"serve: {accepted['tasks']} cells "
        f"({accepted['unique']} unique), "
        f"{accepted['queued']} queued, "
        f"{accepted['coalesced']} coalesced, "
        f"{accepted['cached']} cached "
        f"(socket={args.socket})"
    )
    if args.output:
        # Deterministic payload: spec hash + report only, sorted keys,
        # in *grid cell order* (not arrival order -- a sharded router
        # interleaves shard streams nondeterministically), so any two
        # clients submitting the same grid write identical bytes.
        payload = {
            "name": sweep.name,
            "sweep_hash": sweep.spec_hash,
            "results": [
                {
                    "spec_hash": spec.spec_hash,
                    "report": by_hash[spec.spec_hash],
                }
                for spec in sweep.cells
                if spec.spec_hash in by_hash
            ],
        }
        Path(args.output).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"results written to {args.output}")
    if outcome.failed:
        for frame in outcome.errors:
            print(f"FAILED: {frame.get('task')}: {frame.get('error')}")
        return 1
    return 0


def _command_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.telemetry import render_top
    from repro.serve.client import ServeClient

    client = ServeClient(args.socket, timeout=args.timeout)
    iterations = 1 if args.once else args.iterations
    previous: dict | None = None
    scraped_at: float | None = None
    rendered = 0
    try:
        while True:
            frame = client.metrics()
            now = time.monotonic()
            elapsed = (
                now - scraped_at if scraped_at is not None else None
            )
            print(
                render_top(
                    frame,
                    previous=previous,
                    elapsed=elapsed,
                    title=f"repro top -- {args.socket}",
                ),
                flush=True,
            )
            previous, scraped_at = frame, now
            rendered += 1
            if iterations and rendered >= iterations:
                return 0
            print(flush=True)  # blank line between frames
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _command_mc(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.mc import DifferentialFuzzer, ModelConfig, explore

    cfg = ModelConfig(
        n_nodes=args.nodes,
        n_blocks=args.blocks,
        default_dw=args.default_dw,
        max_retries=args.max_retries,
        faults=not args.no_faults,
    )
    result = explore(
        cfg, max_states=None if args.exhaustive else args.max_states
    )
    sections = [result.summary()]

    fuzz_ok = True
    if args.fuzz:
        fuzzer = DifferentialFuzzer(
            n_nodes=args.fuzz_nodes or args.nodes,
            n_blocks=args.fuzz_blocks or args.blocks,
            ops_per_run=args.ops,
            fault_mode=args.fuzz_mode,
            max_retries=args.max_retries,
            seed=args.seed,
        )
        report = fuzzer.run(args.fuzz)
        fuzz_ok = report.ok
        sections.append("differential fuzz:")
        sections.append(report.summary())
    text = "\n".join(sections)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"summary written to {args.output}")
    if not result.ok or not fuzz_ok:
        print("MC: FAILED (see violations/divergences above)")
        return 1
    print("MC: pass")
    return 0


_COMMANDS = {
    "tables": _command_tables,
    "figures": _command_figures,
    "simulate": _command_simulate,
    "compare": _command_compare,
    "latency": _command_latency,
    "sweep": _command_sweep,
    "perf": _command_perf,
    "chaos": _command_chaos,
    "trace": _command_trace,
    "heatmap": _command_heatmap,
    "serve": _command_serve,
    "submit": _command_submit,
    "top": _command_top,
    "mc": _command_mc,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
