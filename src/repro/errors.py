"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type to handle any library
failure while still letting genuine programming errors (``TypeError``,
``KeyError`` from misuse, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters.

    Examples: a network size that is not a power of two, a cache with zero
    entries, a multicast destination outside the network.
    """


class NetworkError(ReproError):
    """A message could not be routed through the interconnection network."""


class TransientNetworkError(NetworkError):
    """A message kept being lost despite retrying.

    Raised by the recovery layer in :mod:`repro.protocol.base` when a
    send is dropped more than ``FaultPlan.max_retries`` times in a row.
    Under realistic drop rates this is astronomically unlikely; seeing it
    means the fault plan is hostile enough that forward progress cannot
    be guaranteed.

    The structured fields let the protocol's reference-level recovery
    decide what to do without parsing the message: ``multicast`` is True
    when a *multicast re-send* exhausted its budget (partial delivery has
    already mutated shared state, so the protocol degrades the block
    rather than aborting mid-update); ``dests`` names the destinations
    still undelivered when the budget ran out; ``block`` the block being
    operated on, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str | None = None,
        source: int | None = None,
        dests: tuple[int, ...] = (),
        block: int | None = None,
        multicast: bool = False,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.source = source
        self.dests = tuple(dests)
        self.block = block
        self.multicast = multicast


class UnreachableRouteError(NetworkError):
    """The unique omega-network path between two ports crosses a dead
    link or switch, so no amount of retrying can deliver the message.

    ``block`` carries the block the protocol was operating on when the
    dead route was hit (when known), so the recovery layer can degrade
    exactly the affected block.
    """

    def __init__(
        self,
        message: str,
        *,
        source: int | None = None,
        dest: int | None = None,
        block: int | None = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.dest = dest
        self.block = block


class MulticastError(NetworkError):
    """A multicast request violated the constraints of the chosen scheme.

    Scheme 3 (broadcast-bit routing) only supports ``2**l`` destinations that
    are adjacent and aligned; asking it to reach an arbitrary destination set
    raises this error rather than silently reaching the wrong caches.
    """


class ProtocolError(ReproError):
    """The coherence protocol was driven into a state it cannot handle.

    This indicates either a bug in a protocol implementation or an
    inconsistent hand-built system state in a test; it is never raised for
    well-formed reference traces.
    """


class CoherenceError(ReproError):
    """A coherence invariant was violated.

    Raised by the verifying simulator when a processor read observes a value
    other than the one written by the most recent write to that address, or
    when a structural invariant check (single owner, present-vector accuracy)
    fails.

    Structured fields carry the violation's context so automated
    consumers (the model-checking differential fuzzer, the invariant
    checker of :mod:`repro.mc`) compare fields instead of parsing the
    message: ``block`` and ``node`` locate the violation, ``mode`` is the
    block's operating-mode name (``None`` when no owner defines one), and
    ``detail`` is the violation description without the context prefix.
    The human-readable message is unchanged from before these fields
    existed.
    """

    def __init__(
        self,
        message: str,
        *,
        block: int | None = None,
        node: int | None = None,
        mode: str | None = None,
        detail: str | None = None,
    ) -> None:
        super().__init__(message)
        self.block = block
        self.node = node
        self.mode = mode
        self.detail = detail


class TraceError(ReproError):
    """A reference trace is malformed or refers to nonexistent processors."""


class FaultInjectionError(ReproError):
    """The fault-injection subsystem was misconfigured or got stuck.

    Raised for invalid :class:`~repro.faults.plan.FaultPlan` parameters
    (probabilities outside ``[0, 1)``, dead links or switches outside the
    network geometry) and, as a safety net, when protocol-level recovery
    fails to make progress against the injected faults.
    """


class ExecutionError(ReproError):
    """An experiment task could not be completed by the runner.

    Raised by :mod:`repro.runner.executor` when a task exhausts its retry
    budget -- the worker process kept crashing, timing out, or raising --
    with the last failure's traceback in the message.
    """


class ServeError(ReproError):
    """The experiment-serving layer (:mod:`repro.serve`) failed.

    Base class for daemon/client failures that are not plain socket
    errors: protocol violations, server-side task failures reported back
    to a client, a daemon that refused a request.
    """


class FrameError(ServeError):
    """A wire frame violated the length-prefixed JSON protocol.

    Raised for oversized frames, truncated length prefixes or payloads,
    payloads that are not valid JSON, and payloads whose top level is not
    an object (see docs/SERVE.md for the framing rules).
    """


class OverloadedError(ServeError):
    """The serve daemon refused a submission to protect itself.

    Raised client-side when the daemon answers ``rejected`` -- its
    admission queue is full, or it is draining for shutdown.  The
    request was not partially executed: admission is all-or-nothing.
    """
