"""Coherence invariants over abstract model states.

The model-level image of :mod:`repro.protocol.invariants`, extended
with the freshness and fault-recovery properties the concrete checker
cannot express structurally:

1.  **Single owner** -- at most one ``owner``-kind entry, at the node the
    (abstract) block store names.
2.  **Block-store accuracy** -- ``owner is None`` iff no cache owns it.
3.  **Owner in its own vector.**
4.  **DW vector accuracy** -- present vector == valid copies; all copies
    hold the same data (equal freshness), except destinations of an
    update still in flight.
5.  **GR single copy** -- the owner holds the only valid copy; other
    vector members are placeholders naming the owner.
6.  **No orphan copies** without an owner.
7.  **Degraded blocks are empty** -- no entries, no owner, memory fresh,
    and (by the guards of :mod:`repro.mc.model`) never re-cached.
8.  **Freshness** -- at quiescent points the owner's copy is fresh, and
    an unmodified owned block implies fresh memory; a read can therefore
    never observe a stale value (checked per-transition by the
    explorer via the ``read_fresh`` observation).
9.  **In-flight sanity** -- an in-flight update names the DW owner as
    writer, misses only real copies, and its round counter never
    exceeds the retry budget (termination of the re-send loop).
"""

from __future__ import annotations

from repro.mc.model import ModelConfig
from repro.mc.state import COPY, OWNER, PLACEHOLDER, MCState


def check_state(cfg: ModelConfig, state: MCState) -> list[str]:
    """All invariant violations in ``state`` (empty when it is sound)."""
    violations: list[str] = []
    inflight = state.inflight
    for block, bs in enumerate(state.blocks):
        def fail(detail: str, block: int = block) -> None:
            violations.append(f"block {block}: {detail}")

        owners = [
            n for n, c in enumerate(bs.copies) if c is not None and c.kind == OWNER
        ]
        valid = [
            n
            for n, c in enumerate(bs.copies)
            if c is not None and c.kind != PLACEHOLDER
        ]
        if bs.degraded:
            # 7: degraded means purged, memory-served, and fresh.
            if any(c is not None for c in bs.copies):
                fail("degraded block still has cache entries")
            if bs.owner is not None or bs.present:
                fail("degraded block still has an owner or present vector")
            if not bs.mem_fresh:
                fail("degraded block served from stale memory")
            continue
        # 1 + 2: single owner, matching the abstract block store.
        if len(owners) > 1:
            fail(f"owned by several caches: {owners}")
        if bs.owner is None:
            if owners:
                fail(f"no recorded owner but cache {owners[0]} owns it")
            if valid:
                fail(f"valid copies at {valid} with no owner")  # 6
            if bs.present:
                fail("present vector without an owner")
            if not bs.mem_fresh:
                fail("unowned block with stale memory")
            continue
        if owners != [bs.owner]:
            fail(
                f"block store names owner {bs.owner}, caches say {owners}"
            )
            continue
        owner_copy = bs.copies[bs.owner]
        assert owner_copy is not None
        # 3: the owner appears in its own vector.
        if bs.owner not in bs.present:
            fail(
                f"owner {bs.owner} missing from its present vector "
                f"{list(bs.present)}"
            )
        in_flight_here = inflight is not None and inflight.block == block
        if bs.dw:
            # 4: vector == valid copies; data coherent (equal freshness)
            # except at the missed destinations of an in-flight update.
            if set(bs.present) != set(valid):
                fail(
                    f"present vector {list(bs.present)} != valid copies "
                    f"{valid}"
                )
            missed = set(inflight.missed) if in_flight_here else set()
            for n in valid:
                copy = bs.copies[n]
                assert copy is not None
                expected = owner_copy.fresh and n not in missed
                if n != bs.owner and copy.fresh != expected:
                    fail(
                        f"copy at {n} freshness {copy.fresh}, owner's "
                        f"update state implies {expected}"
                    )
                if n != bs.owner and copy.modified:
                    fail(f"non-owner copy at {n} claims the modified bit")
        else:
            # 5: only the owner's copy is valid; vector members are
            # placeholders pointing at the owner.
            if valid != [bs.owner]:
                fail(
                    f"valid copies at {valid}, expected only owner "
                    f"{bs.owner}"
                )
            for member in bs.present:
                if member == bs.owner:
                    continue
                copy = bs.copies[member]
                if copy is None:
                    fail(
                        f"present vector names cache {member}, which has "
                        f"no entry"
                    )
                elif copy.kind != PLACEHOLDER:
                    fail(f"present vector member {member} holds a copy")
                elif copy.ptr != bs.owner:
                    fail(
                        f"placeholder at {member} points at {copy.ptr}, "
                        f"owner is {bs.owner}"
                    )
        # 8: quiescent freshness -- the owner is current, and clean
        # ownership implies current memory.
        if not in_flight_here:
            if not owner_copy.fresh:
                fail(f"owner {bs.owner} holds a stale copy at quiescence")
            if not owner_copy.modified and not bs.mem_fresh:
                fail("unmodified owned block but memory is stale")
    # 9: in-flight sanity and re-send termination.
    if inflight is not None:
        bs = state.blocks[inflight.block]
        prefix = f"block {inflight.block}: in-flight update"
        if bs.owner != inflight.writer or not bs.dw:
            violations.append(
                f"{prefix} writer {inflight.writer} is not the DW owner"
            )
        if not inflight.missed:
            violations.append(f"{prefix} with an empty missed set")
        for dest in inflight.missed:
            copy = bs.copies[dest]
            if copy is None or copy.kind != COPY:
                violations.append(
                    f"{prefix} misses node {dest}, which holds no copy"
                )
        if not 1 <= inflight.rounds <= cfg.max_retries:
            violations.append(
                f"{prefix} at round {inflight.rounds}, outside the retry "
                f"budget ({cfg.max_retries}) -- re-send loop not bounded"
            )
    return violations
