"""Differential fuzzing: abstract model vs. the concrete simulator.

Each fuzz run replays one random interleaving of protocol operations
(reads, writes, explicit evictions, mode switches -- optionally with
injected faults) through **both** the abstract model of
:mod:`repro.mc.model` and the concrete
:class:`~repro.protocol.stenstrom.StenstromProtocol`, asserting
*lockstep agreement on observable state* after every operation: the
concrete protocol's :meth:`abstract_state` snapshot, projected onto the
model's freshness abstraction (a copy is fresh iff its data equals the
fuzzer's shadow of the most recent write), must equal the model state
exactly -- ownership, mode, present vector, every entry's kind and
OWNER pointer, the modified bit, memory freshness, and degradation.

Fault modes per run:

* ``none`` -- no injector; the protocol's fault-free paths.
* ``scripted`` -- a :class:`~repro.faults.scripted.ScriptedInjector`
  drives *targeted* deterministic drops: sub-budget drops anywhere
  (which must be observably invisible) and write-update multicast
  drops past the re-send budget (which must degrade the block exactly
  as the model's partial-delivery/exhaustion transitions predict).
* ``dead`` -- a :class:`~repro.faults.plan.FaultPlan` with a dead link
  or switch; degradations are oracle-scheduled (the concrete run
  reveals which block degraded, the model replays ``degrade`` and then
  the operation) because *when* a route dies depends on message-level
  detail below the model's abstraction.

Configurations keep every cache large enough (fully associative,
``n_blocks`` << entries) that no implicit replacement occurs; eviction
behaviour is exercised through the explicit ``evict`` operation, which
both sides model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cache.state import Mode
from repro.faults.plan import FaultPlan
from repro.faults.scripted import DropRule, attach_scripted
from repro.mc.model import ModelConfig, apply, initial_state
from repro.mc.state import BlockState, Copy, MCState, PLACEHOLDER
from repro.protocol.messages import MsgKind
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.system import System, SystemConfig
from repro.types import Address

#: Multiplier giving each run an independent, reproducible seed.
RUN_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class Divergence:
    """First disagreement of one fuzz run."""

    run_seed: int
    fault_mode: str
    step: int
    op: str
    detail: str

    def render(self) -> str:
        return (
            f"run seed {self.run_seed} ({self.fault_mode}), step "
            f"{self.step}: {self.op}\n{self.detail}"
        )


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    n_runs: int
    n_ops: int
    runs_by_mode: dict[str, int] = field(default_factory=dict)
    n_degradations: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        modes = ", ".join(
            f"{mode}={count}"
            for mode, count in sorted(self.runs_by_mode.items())
        )
        lines = [
            f"runs              : {self.n_runs} ({modes})",
            f"operations        : {self.n_ops}",
            f"degradations      : {self.n_degradations}",
            f"divergences       : {len(self.divergences)}",
        ]
        for divergence in self.divergences[:5]:
            lines.append("")
            lines.append(divergence.render())
        return "\n".join(lines)


class DifferentialFuzzer:
    """Replays random interleavings through model and simulator."""

    def __init__(
        self,
        *,
        n_nodes: int = 4,
        n_blocks: int = 2,
        ops_per_run: int = 24,
        fault_mode: str = "mixed",
        max_retries: int = 1,
        seed: int = 0,
    ) -> None:
        if fault_mode not in ("none", "scripted", "dead", "mixed"):
            raise ValueError(f"unknown fault mode {fault_mode!r}")
        self.n_nodes = n_nodes
        self.n_blocks = n_blocks
        self.ops_per_run = ops_per_run
        self.fault_mode = fault_mode
        self.max_retries = max_retries
        self.seed = seed

    # ------------------------------------------------------------------

    def run(self, n_runs: int) -> FuzzReport:
        """Execute ``n_runs`` independent runs; stops early on divergence."""
        report = FuzzReport(n_runs=0, n_ops=0)
        for index in range(n_runs):
            run_seed = self.seed * RUN_SEED_STRIDE + index
            divergence, ops, mode, degradations = self._run_one(run_seed)
            report.n_runs += 1
            report.n_ops += ops
            report.n_degradations += degradations
            report.runs_by_mode[mode] = report.runs_by_mode.get(mode, 0) + 1
            if divergence is not None:
                report.divergences.append(divergence)
                break
        return report

    # ------------------------------------------------------------------

    def _run_one(
        self, run_seed: int
    ) -> tuple[Divergence | None, int, str, int]:
        rng = random.Random(run_seed)
        mode = self.fault_mode
        if mode == "mixed":
            mode = rng.choice(("none", "scripted", "dead"))
        default_dw = rng.random() < 0.5

        plan = None
        if mode == "dead":
            plan = self._random_dead_plan(rng)
        system = System(
            SystemConfig(
                n_nodes=self.n_nodes,
                block_size_words=1,
                cache_entries=max(8, self.n_blocks + 2),
            ),
            fault_plan=plan,
        )
        protocol = StenstromProtocol(
            system,
            default_mode=(
                Mode.DISTRIBUTED_WRITE if default_dw else Mode.GLOBAL_READ
            ),
        )
        scripted = None
        if mode == "scripted":
            scripted = attach_scripted(system, max_retries=self.max_retries)

        cfg = ModelConfig(
            n_nodes=self.n_nodes,
            n_blocks=self.n_blocks,
            default_dw=default_dw,
            max_retries=self.max_retries,
            faults=mode != "none",
        )
        mstate = initial_state(cfg)
        shadow = [0] * self.n_blocks
        next_value = 1
        degradations = 0

        for step in range(self.ops_per_run):
            op = self._pick_op(rng, cfg, mstate, scripted is not None)
            if (
                mode == "scripted"
                and op[0] != "write_exhaust"
                and rng.random() < 0.15
                and all(r.matched >= r.drops for r in scripted.rules)
            ):
                # Sub-budget noise: one drop somewhere, fully recovered
                # by a retry -- must be observably invisible.  Only when
                # no earlier rule is still live: consecutive single-drop
                # rules would compound into budget exhaustion.
                scripted.add_rule(DropRule(drops=1))
            label = self._label(op)

            degraded_before = protocol.uncacheable_blocks
            try:
                value_check = self._apply_concrete(
                    protocol, scripted, op, next_value
                )
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                return (
                    Divergence(
                        run_seed, mode, step, label,
                        f"concrete simulator raised {type(exc).__name__}: "
                        f"{exc}",
                    ),
                    step,
                    mode,
                    degradations,
                )
            newly_degraded = sorted(
                protocol.uncacheable_blocks - degraded_before
            )
            degradations += len(newly_degraded)

            if op[0] in ("write", "write_exhaust"):
                shadow[op[2]] = next_value
                next_value += 1
            if value_check is not None:
                observed, block = value_check
                if observed != shadow[block]:
                    return (
                        Divergence(
                            run_seed, mode, step, label,
                            f"read observed {observed}, most recent write "
                            f"stored {shadow[block]}",
                        ),
                        step,
                        mode,
                        degradations,
                    )

            mstate = self._apply_model(
                cfg, mstate, op, newly_degraded
            )
            detail = self._compare(protocol, cfg, mstate, shadow)
            if detail is not None:
                return (
                    Divergence(run_seed, mode, step, label, detail),
                    step,
                    mode,
                    degradations,
                )
        return None, self.ops_per_run, mode, degradations

    # ------------------------------------------------------------------
    # Operation selection
    # ------------------------------------------------------------------

    def _pick_op(
        self,
        rng: random.Random,
        cfg: ModelConfig,
        mstate: MCState,
        scripted: bool,
    ) -> tuple:
        node = rng.randrange(cfg.n_nodes)
        block = rng.randrange(cfg.n_blocks)
        bs = mstate.blocks[block]
        if scripted and rng.random() < 0.12:
            # Target a write-update multicast past its re-send budget,
            # when some block is in the right configuration.
            for candidate in range(cfg.n_blocks):
                cbs = mstate.blocks[candidate]
                if (
                    not cbs.degraded
                    and cbs.owner is not None
                    and cbs.dw
                    and len(cbs.present) > 1
                ):
                    others = [n for n in cbs.present if n != cbs.owner]
                    dest = rng.choice(others)
                    return ("write_exhaust", cbs.owner, candidate, dest)
        roll = rng.random()
        if roll < 0.40:
            return ("read", node, block)
        if roll < 0.75:
            return ("write", node, block)
        if roll < 0.87:
            if bs.copies[node] is not None:
                return ("evict", node, block)
            return ("read", node, block)
        return ("set_mode", node, block, rng.random() < 0.5)

    @staticmethod
    def _label(op: tuple) -> str:
        if op[0] == "write_exhaust":
            return (
                f"write(node={op[1]}, block={op[2]}) with write_update to "
                f"node {op[3]} dropped past the retry budget"
            )
        return repr(op)

    # ------------------------------------------------------------------
    # Concrete side
    # ------------------------------------------------------------------

    def _apply_concrete(
        self, protocol, scripted, op, next_value
    ) -> tuple[int, int] | None:
        """Run ``op`` on the simulator; returns (observed, block) for reads."""
        kind = op[0]
        if kind == "read":
            return protocol.read(op[1], Address(op[2], 0)), op[2]
        if kind == "write":
            protocol.write(op[1], Address(op[2], 0), next_value)
            return None
        if kind == "evict":
            protocol.evict(op[1], op[2])
            return None
        if kind == "set_mode":
            mode = Mode.DISTRIBUTED_WRITE if op[3] else Mode.GLOBAL_READ
            protocol.set_mode(op[1], op[2], mode)
            return None
        if kind == "write_exhaust":
            # The initial round drops once, and so does every re-send:
            # max_retries + 1 consecutive drops exhaust the budget.
            scripted.add_rule(
                DropRule(
                    drops=self.max_retries + 1,
                    kind=MsgKind.WRITE_UPDATE.value,
                    source=op[1],
                    dest=op[3],
                )
            )
            protocol.write(op[1], Address(op[2], 0), next_value)
            return None
        raise ValueError(f"unknown fuzz op {op!r}")

    # ------------------------------------------------------------------
    # Model side
    # ------------------------------------------------------------------

    @staticmethod
    def _apply_model(
        cfg: ModelConfig,
        mstate: MCState,
        op: tuple,
        newly_degraded: list[int],
    ) -> MCState:
        # Oracle-scheduled degradations (dead-route mode): the concrete
        # run reveals which blocks retreated to memory-direct service;
        # the model degrades them first, then replays the operation --
        # equivalent because degradation purges every partial mutation
        # of the block and the concrete reference retried from scratch.
        kind = op[0]
        if kind == "write_exhaust":
            # Deterministic exhaustion: the model walks the partial
            # delivery through lost re-send rounds to degradation.
            mstate, _ = apply(
                cfg, mstate, ("write_partial", op[1], op[2], (op[3],))
            )
            while mstate.inflight is not None:
                mstate, _ = apply(cfg, mstate, ("drop_round", op[2]))
            return mstate
        for block in newly_degraded:
            mstate, _ = apply(cfg, mstate, ("degrade", block))
        if kind == "evict" and mstate.blocks[op[2]].copies[op[1]] is None:
            # The eviction completed through degradation: no entry left.
            return mstate
        return apply(cfg, mstate, op)[0]

    # ------------------------------------------------------------------
    # Lockstep comparison
    # ------------------------------------------------------------------

    def _compare(
        self,
        protocol: StenstromProtocol,
        cfg: ModelConfig,
        mstate: MCState,
        shadow: list[int],
    ) -> str | None:
        """Mismatch description, or ``None`` when in lockstep."""
        projected = self._project(protocol, shadow)
        if projected == mstate.blocks:
            return None
        lines = []
        for block, (got, expected) in enumerate(
            zip(projected, mstate.blocks)
        ):
            if got != expected:
                lines.append(f"block {block}:")
                lines.append(f"  model    : {expected}")
                lines.append(f"  simulator: {got}")
        return "\n".join(lines)

    def _project(
        self, protocol: StenstromProtocol, shadow: list[int]
    ) -> tuple[BlockState, ...]:
        """The simulator's snapshot in the model's freshness abstraction."""
        snapshot = protocol.abstract_state(range(self.n_blocks))
        out = []
        for ba in snapshot:
            expected = (shadow[ba.block],)
            copies: list[Copy | None] = [None] * self.n_nodes
            for ca in ba.copies:
                fresh = (
                    False if ca.kind == PLACEHOLDER else ca.data == expected
                )
                copies[ca.node] = Copy(
                    kind=ca.kind,
                    ptr=ca.ptr,
                    fresh=fresh,
                    modified=ca.modified,
                )
            out.append(
                BlockState(
                    owner=ba.owner,
                    dw=ba.mode == Mode.DISTRIBUTED_WRITE.name,
                    present=ba.present,
                    copies=tuple(copies),
                    mem_fresh=ba.memory == expected,
                    degraded=ba.degraded,
                )
            )
        return tuple(out)

    # ------------------------------------------------------------------

    def _random_dead_plan(self, rng: random.Random) -> FaultPlan:
        """One random dead link or switch inside the network geometry."""
        import math

        n_stages = int(math.log2(self.n_nodes))
        if rng.random() < 0.5:
            level = rng.randrange(n_stages + 1)
            position = rng.randrange(self.n_nodes)
            return FaultPlan(
                dead_links=((level, position),), max_retries=16
            )
        stage = rng.randrange(n_stages)
        index = rng.randrange(self.n_nodes // 2)
        return FaultPlan(dead_switches=((stage, index),), max_retries=16)
