"""Immutable abstract states for the two-mode protocol model.

The model checker explores a *finite* abstraction of the protocol: data
words are abstracted to one **freshness** bit per copy ("does this copy
hold the globally most recent write?"), which is exactly what the
verifying simulator's shadow-memory check observes.  Everything else --
ownership, mode, the present vector, OWNER pointers, the modified bit,
degradation -- is tracked concretely, because the structural invariants
constrain those fields directly.

States are nested :class:`typing.NamedTuple` values: hashable (the
explorer's visited set is a dict keyed by state), comparable with ``==``
(the differential fuzzer's lockstep check), and canonical by
construction (``present`` and ``missed`` are sorted tuples; a block with
no owner always carries ``dw=False`` and ``present=()``).
"""

from __future__ import annotations

from typing import NamedTuple

#: Entry kinds (shared vocabulary with :mod:`repro.protocol.abstract`).
OWNER = "owner"
COPY = "copy"
PLACEHOLDER = "placeholder"


class Copy(NamedTuple):
    """One cache's entry for a block.

    ``fresh`` is meaningful for valid kinds only and normalized to
    ``False`` for placeholders (their data is unreadable).  ``ptr`` is
    the entry's OWNER field: the node itself for an owner, the serving
    owner at creation time otherwise -- possibly stale afterwards,
    exactly as in the concrete protocol.
    """

    kind: str
    ptr: int
    fresh: bool
    modified: bool


class BlockState(NamedTuple):
    """All protocol state for one block at (or between) quiescent points."""

    owner: int | None
    #: Distributed-write bit of the owner's state field; ``False``
    #: (normalized) when no owner defines a mode.
    dw: bool
    #: The owner's present-flag vector, sorted; ``()`` without an owner.
    present: tuple[int, ...]
    #: Per-node entries, ``None`` where a cache holds nothing.
    copies: tuple[Copy | None, ...]
    #: Does home memory hold the most recent write?
    mem_fresh: bool
    #: Degraded to memory-direct service (never re-cached)?
    degraded: bool


class Inflight(NamedTuple):
    """A distributed-write update multicast that was partially delivered.

    While an update is in flight the reference has not completed --
    the atomic-reference model forbids other references until the
    recovery layer either re-delivers to every missed destination or
    exhausts the ``max_retries`` re-send budget (and the block
    degrades).  ``rounds`` mirrors the concrete recovery layer's
    counter: it is 1 after the initial partial round and exhaustion
    fires when it would exceed the budget.
    """

    block: int
    writer: int
    missed: tuple[int, ...]
    rounds: int


class MCState(NamedTuple):
    """One global model state: all blocks plus the (single) in-flight op."""

    blocks: tuple[BlockState, ...]
    inflight: Inflight | None


def empty_block(n_nodes: int) -> BlockState:
    """The never-referenced block: unowned, memory authoritative."""
    return BlockState(
        owner=None,
        dw=False,
        present=(),
        copies=(None,) * n_nodes,
        mem_fresh=True,
        degraded=False,
    )


def render_copy(node: int, copy: Copy | None) -> str:
    """One cache entry as a compact human-readable token."""
    if copy is None:
        return f"{node}:-"
    marks = ""
    if copy.kind != PLACEHOLDER:
        marks += "*" if copy.fresh else "!"
    if copy.modified:
        marks += "M"
    short = {OWNER: "O", COPY: "C", PLACEHOLDER: "ph"}[copy.kind]
    return f"{node}:{short}->{copy.ptr}{marks}"


def render_block(block: int, bs: BlockState) -> str:
    """One block's state on one line (for counterexample traces)."""
    if bs.degraded:
        return f"block {block}: DEGRADED (memory-direct)"
    mode = "-" if bs.owner is None else ("DW" if bs.dw else "GR")
    entries = " ".join(
        render_copy(node, copy) for node, copy in enumerate(bs.copies)
    )
    mem = "mem*" if bs.mem_fresh else "mem!"
    return (
        f"block {block}: owner={bs.owner} mode={mode} "
        f"present={list(bs.present)} [{entries}] {mem}"
    )


def render_state(state: MCState) -> str:
    """A full state as an indented multi-line listing."""
    lines = [
        "  " + render_block(index, bs)
        for index, bs in enumerate(state.blocks)
    ]
    if state.inflight is not None:
        inf = state.inflight
        lines.append(
            f"  in flight: write-update on block {inf.block} from "
            f"{inf.writer}, undelivered at {list(inf.missed)} "
            f"after {inf.rounds} round(s)"
        )
    return "\n".join(lines)


def render_action(action: tuple) -> str:
    """One transition label as a human-readable phrase."""
    name = action[0]
    if name == "read":
        return f"read(node={action[1]}, block={action[2]})"
    if name == "write":
        return f"write(node={action[1]}, block={action[2]})"
    if name == "evict":
        return f"evict(node={action[1]}, block={action[2]})"
    if name == "set_mode":
        mode = "DW" if action[3] else "GR"
        return f"set_mode(node={action[1]}, block={action[2]}, {mode})"
    if name == "degrade":
        return f"fault: degrade(block={action[1]})"
    if name == "write_partial":
        return (
            f"fault: write(node={action[1]}, block={action[2]}) with "
            f"update multicast undelivered at {list(action[3])}"
        )
    if name == "redeliver":
        return f"recovery: re-send reaches node {action[2]} (block {action[1]})"
    if name == "drop_round":
        return f"fault: re-send round lost again (block {action[1]})"
    return repr(action)
