"""Breadth-first explicit-state exploration of the abstract model.

:func:`explore` enumerates every state reachable from the initial state
under the enabled actions of :mod:`repro.mc.model`, checking the
invariants of :mod:`repro.mc.invariants` on each *new* state and the
``read_fresh`` observation on each transition.  States are canonical
immutable tuples, so the visited set is an ordinary dict; its values
are ``(parent_state, action)`` back-pointers, which make the first
(and therefore *minimal* -- BFS visits states in distance order)
counterexample trace reconstructible on violation.

Exploration is deterministic: the action order is fixed, dict iteration
is insertion-ordered, and nothing consults a clock or an RNG -- two runs
of the same configuration report identical state and transition counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.mc.invariants import check_state
from repro.mc.model import ModelConfig, apply, enabled_actions, initial_state
from repro.mc.state import MCState, render_action, render_state


@dataclass(frozen=True)
class Violation:
    """One property violation, with the shortest trace that reaches it."""

    #: ``invariant``, ``stale-read``, or ``deadlock``.
    kind: str
    detail: str
    #: Action labels from the initial state to the violating state.
    trace: tuple[str, ...]
    #: Rendered violating state.
    state: str

    def render(self) -> str:
        lines = [f"{self.kind}: {self.detail}", "trace:"]
        if not self.trace:
            lines.append("  (initial state)")
        for step, label in enumerate(self.trace, 1):
            lines.append(f"  {step}. {label}")
        lines.append("state reached:")
        lines.append(self.state)
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or capped) exploration."""

    config: ModelConfig
    n_states: int
    n_transitions: int
    depth: int
    #: Exploration covered the full reachable space (no cap hit).
    complete: bool
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"nodes             : {self.config.n_nodes}",
            f"blocks            : {self.config.n_blocks}",
            f"default mode      : "
            f"{'distributed-write' if self.config.default_dw else 'global-read'}",
            f"fault actions     : {'on' if self.config.faults else 'off'}",
            f"states explored   : {self.n_states}",
            f"transitions       : {self.n_transitions}",
            f"diameter          : {self.depth}",
            f"exhaustive        : {self.complete}",
            f"violations        : {len(self.violations)}",
        ]
        for violation in self.violations:
            lines.append("")
            lines.append(violation.render())
        return "\n".join(lines)


def _trace_to(
    parents: dict[MCState, tuple[MCState, tuple] | None], state: MCState
) -> tuple[str, ...]:
    """The action labels along the BFS tree path from the root."""
    labels: list[str] = []
    cursor: MCState | None = state
    while cursor is not None:
        entry = parents[cursor]
        if entry is None:
            break
        parent, action = entry
        labels.append(render_action(action))
        cursor = parent
    return tuple(reversed(labels))


def explore(
    cfg: ModelConfig,
    *,
    max_states: int | None = None,
    max_violations: int = 1,
) -> ExplorationResult:
    """Breadth-first exploration from the initial state.

    ``max_states`` caps the visited set (``None`` explores exhaustively;
    the result's ``complete`` flag records which happened).  Exploration
    stops early once ``max_violations`` violations are collected -- the
    default stops at the first, whose BFS trace is minimal.
    """
    init = initial_state(cfg)
    parents: dict[MCState, tuple[MCState, tuple] | None] = {init: None}
    depth_of = {init: 0}
    queue: deque[MCState] = deque([init])
    n_transitions = 0
    depth = 0
    complete = True
    violations: list[Violation] = []

    for detail in check_state(cfg, init):
        violations.append(
            Violation("invariant", detail, (), render_state(init))
        )

    while queue and len(violations) < max_violations:
        state = queue.popleft()
        actions = enabled_actions(cfg, state)
        if not actions:
            violations.append(
                Violation(
                    "deadlock",
                    "reachable state with no enabled action",
                    _trace_to(parents, state),
                    render_state(state),
                )
            )
            continue
        for action in actions:
            new_state, obs = apply(cfg, state, action)
            n_transitions += 1
            if obs.get("read_fresh") is False:
                violations.append(
                    Violation(
                        "stale-read",
                        f"{render_action(action)} observed a value older "
                        f"than the most recent write",
                        _trace_to(parents, state) + (render_action(action),),
                        render_state(new_state),
                    )
                )
                if len(violations) >= max_violations:
                    break
            if new_state in parents:
                continue
            if max_states is not None and len(parents) >= max_states:
                complete = False
                continue
            parents[new_state] = (state, action)
            depth_of[new_state] = depth_of[state] + 1
            depth = max(depth, depth_of[new_state])
            for detail in check_state(cfg, new_state):
                violations.append(
                    Violation(
                        "invariant",
                        detail,
                        _trace_to(parents, new_state),
                        render_state(new_state),
                    )
                )
            if len(violations) >= max_violations:
                break
            queue.append(new_state)

    if queue:
        # Stopped early on violations: coverage is unknown, not full.
        complete = False
    return ExplorationResult(
        config=cfg,
        n_states=len(parents),
        n_transitions=n_transitions,
        depth=depth,
        complete=complete,
        violations=violations,
    )
