"""Explicit-state model checking of the two-mode protocol.

The package verifies the protocol design -- including PR 3's
fault-recovery paths -- two complementary ways:

* **Exhaustive exploration** (:func:`explore`): a finite guarded-action
  abstraction of :class:`~repro.protocol.stenstrom.StenstromProtocol`
  (:mod:`repro.mc.model`) is explored breadth-first over every
  reachable state; :mod:`repro.mc.invariants` checks coherence,
  freshness, degradation and re-send-termination properties on each
  one, and violations come with a *minimal* counterexample trace.

* **Differential fuzzing** (:class:`DifferentialFuzzer`): random
  interleavings -- clean, with scripted message drops, and with dead
  network elements -- are replayed through both the abstract model and
  the concrete simulator, demanding lockstep equality of the
  observable state after every operation.

See ``docs/MODELCHECK.md`` for the abstraction, the invariant
catalogue, and how to read a counterexample.
"""

from repro.mc.diff import DifferentialFuzzer, Divergence, FuzzReport
from repro.mc.explorer import ExplorationResult, Violation, explore
from repro.mc.invariants import check_state
from repro.mc.model import ModelConfig, apply, enabled_actions, initial_state
from repro.mc.state import (
    BlockState,
    Copy,
    Inflight,
    MCState,
    render_action,
    render_state,
)

__all__ = [
    "BlockState",
    "Copy",
    "DifferentialFuzzer",
    "Divergence",
    "ExplorationResult",
    "FuzzReport",
    "Inflight",
    "MCState",
    "ModelConfig",
    "Violation",
    "apply",
    "check_state",
    "enabled_actions",
    "explore",
    "initial_state",
    "render_action",
    "render_state",
]
