"""Guarded-action transition model of the two-mode protocol.

Each action mirrors one *atomic* operation of
:class:`~repro.protocol.stenstrom.StenstromProtocol` -- a processor
reference (`read`/`write`), an explicit eviction, a mode switch -- or a
fault-recovery transition from PR 3's recovery layer: degradation to
memory-direct service, and the partial delivery / per-destination
re-send / budget-exhaustion lifecycle of a distributed-write update
multicast.  Effects are transcribed from the concrete implementation
(§2.2 items 1-7 plus the documented deviations), so the differential
fuzzer (:mod:`repro.mc.diff`) can demand *lockstep equality* between
the two, not mere similarity.

All functions are pure: they take an :class:`~repro.mc.state.MCState`
and return a new one plus an observation dict (currently the freshness
of the value a read observed -- the model's analogue of the simulator's
shadow-memory check).

Two multicasts besides the write update (OWNER_UPDATE, INVALIDATE) can
also exhaust their re-send budgets in the concrete protocol; their
recovery collapses to exactly the ``degrade`` action here, so the model
covers them without separate in-flight machinery.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.mc.state import (
    COPY,
    OWNER,
    PLACEHOLDER,
    BlockState,
    Copy,
    Inflight,
    MCState,
    empty_block,
)


class ModelConfig(NamedTuple):
    """Parameters of one model instance.

    ``default_dw`` selects the mode blocks enter on first load (the
    protocol's ``default_mode``); ``max_retries`` is the multicast
    re-send budget (exhaustion degrades the block); ``faults`` enables
    the fault actions; ``evicts`` / ``set_modes`` gate the corresponding
    reference-level actions (useful for slicing the state space).
    """

    n_nodes: int
    n_blocks: int
    default_dw: bool = False
    max_retries: int = 1
    faults: bool = True
    evicts: bool = True
    set_modes: bool = True


def initial_state(cfg: ModelConfig) -> MCState:
    """The machine after reset: every block unowned, memory fresh."""
    return MCState(
        blocks=tuple(empty_block(cfg.n_nodes) for _ in range(cfg.n_blocks)),
        inflight=None,
    )


# ---------------------------------------------------------------------------
# Small helpers over immutable states
# ---------------------------------------------------------------------------


def _set_copy(
    copies: tuple[Copy | None, ...], node: int, copy: Copy | None
) -> tuple[Copy | None, ...]:
    return copies[:node] + (copy,) + copies[node + 1 :]


def _with_block(state: MCState, block: int, bs: BlockState) -> MCState:
    blocks = state.blocks[:block] + (bs,) + state.blocks[block + 1 :]
    return MCState(blocks=blocks, inflight=state.inflight)


def _add_present(present: tuple[int, ...], node: int) -> tuple[int, ...]:
    if node in present:
        return present
    return tuple(sorted(present + (node,)))


def _drop_present(present: tuple[int, ...], node: int) -> tuple[int, ...]:
    return tuple(n for n in present if n != node)


def _valid(copy: Copy | None) -> bool:
    return copy is not None and copy.kind != PLACEHOLDER


# ---------------------------------------------------------------------------
# Effect helpers (transcriptions of the concrete protocol's paths)
# ---------------------------------------------------------------------------


def _exclusive_load(
    cfg: ModelConfig, bs: BlockState, node: int
) -> BlockState:
    """2(a)/4(a): no cached copy anywhere; load from memory, own it."""
    copy = Copy(OWNER, ptr=node, fresh=bs.mem_fresh, modified=False)
    return bs._replace(
        owner=node,
        dw=cfg.default_dw,
        present=(node,),
        copies=_set_copy(bs.copies, node, copy),
    )


def _serve_read(bs: BlockState, node: int) -> tuple[BlockState, bool]:
    """2(b): the owner serves a remote read miss per its mode.

    Returns the new block state and the freshness of the value the
    requester observed (the owner's copy in either mode).
    """
    owner = bs.owner
    assert owner is not None
    owner_copy = bs.copies[owner]
    assert owner_copy is not None
    present = _add_present(bs.present, node)
    if bs.dw:
        # 2(b)i: a whole copy ships; the requester becomes UnOwned.
        copy = Copy(COPY, ptr=owner, fresh=owner_copy.fresh, modified=False)
    else:
        # 2(b)ii: only the datum travels; the requester keeps an
        # invalid placeholder naming the owner.
        copy = Copy(PLACEHOLDER, ptr=owner, fresh=False, modified=False)
    return (
        bs._replace(present=present, copies=_set_copy(bs.copies, node, copy)),
        owner_copy.fresh,
    )


def _acquire_ownership(bs: BlockState, node: int) -> BlockState:
    """3(d): ownership transfer to ``node`` (which holds an entry).

    Also the hand-off half of replacement 5(b), where in global-read
    mode the requester holds only a placeholder and the data rides
    along with the state field.
    """
    old = bs.owner
    assert old is not None and old != node
    old_copy = bs.copies[old]
    assert old_copy is not None
    present = _add_present(bs.present, node)
    node_copy = bs.copies[node]
    copies = bs.copies
    if bs.dw:
        # 3(d)i: state only; the requester's copy is already current.
        assert node_copy is not None and node_copy.kind == COPY
        new_owner = Copy(
            OWNER, ptr=node, fresh=node_copy.fresh, modified=old_copy.modified
        )
        copies = _set_copy(copies, old, Copy(COPY, node, old_copy.fresh, False))
    else:
        # 3(d)ii: copy + state move; placeholders repoint; the old
        # owner invalidates itself.
        new_owner = Copy(
            OWNER, ptr=node, fresh=old_copy.fresh, modified=old_copy.modified
        )
        for member in present:
            if member in (old, node):
                continue
            member_copy = copies[member]
            if member_copy is not None:
                copies = _set_copy(
                    copies,
                    member,
                    member_copy._replace(ptr=node),
                )
        copies = _set_copy(copies, old, Copy(PLACEHOLDER, node, False, False))
    copies = _set_copy(copies, node, new_owner)
    return bs._replace(owner=node, present=present, copies=copies)


def _miss_acquire(cfg: ModelConfig, bs: BlockState, node: int) -> BlockState:
    """4(a)/4(b): write miss -- load with ownership."""
    old = bs.owner
    if old is None:
        return _exclusive_load(cfg, bs, node)
    assert old != node
    old_copy = bs.copies[old]
    assert old_copy is not None
    present = _add_present(bs.present, node)
    copies = bs.copies
    new_owner = Copy(
        OWNER, ptr=node, fresh=old_copy.fresh, modified=old_copy.modified
    )
    if bs.dw:
        copies = _set_copy(copies, old, Copy(COPY, node, old_copy.fresh, False))
    else:
        for member in present:
            if member in (old, node):
                continue
            member_copy = copies[member]
            if member_copy is not None:
                copies = _set_copy(
                    copies, member, member_copy._replace(ptr=node)
                )
        copies = _set_copy(copies, old, Copy(PLACEHOLDER, node, False, False))
    copies = _set_copy(copies, node, new_owner)
    return bs._replace(owner=node, present=present, copies=copies)


def _owner_write(
    bs: BlockState, node: int, missed: tuple[int, ...] = ()
) -> BlockState:
    """3(a)/3(b)/3(c): write at the owning cache, distributing if DW.

    ``missed`` (fault action only) names the distributed-write
    destinations the update multicast failed to reach: their copies go
    stale instead of fresh.
    """
    assert bs.owner == node
    copies = _set_copy(
        bs.copies, node, Copy(OWNER, ptr=node, fresh=True, modified=True)
    )
    if bs.dw:
        for other in bs.present:
            if other == node:
                continue
            other_copy = copies[other]
            assert other_copy is not None and other_copy.kind == COPY
            copies = _set_copy(
                copies, other, other_copy._replace(fresh=other not in missed)
            )
    return bs._replace(copies=copies, mem_fresh=False)


def _ensure_owner(cfg: ModelConfig, bs: BlockState, node: int) -> BlockState:
    """Make ``node`` the owner (the ``set_mode`` prologue)."""
    copy = bs.copies[node]
    if _valid(copy):
        if bs.owner != node:
            return _acquire_ownership(bs, node)
        return bs
    return _miss_acquire(cfg, bs, node)


def _replace_unowned(bs: BlockState, node: int) -> BlockState:
    """5(c): clear our present flag at the owner; drop the entry."""
    present = _drop_present(bs.present, node)
    return bs._replace(
        present=present, copies=_set_copy(bs.copies, node, None)
    )


def _degrade(bs: BlockState, n_nodes: int) -> BlockState:
    """Dead-route / exhausted-budget retreat: memory-direct forever.

    Writes back the freshest copy (the owner's, when modified), purges
    every entry and the ownership record, and marks the block degraded.
    """
    mem_fresh = bs.mem_fresh
    if bs.owner is not None:
        owner_copy = bs.copies[bs.owner]
        if owner_copy is not None and owner_copy.modified:
            mem_fresh = owner_copy.fresh
    return BlockState(
        owner=None,
        dw=False,
        present=(),
        copies=(None,) * n_nodes,
        mem_fresh=mem_fresh,
        degraded=True,
    )


# ---------------------------------------------------------------------------
# Action enumeration
# ---------------------------------------------------------------------------


def enabled_actions(cfg: ModelConfig, state: MCState) -> list[tuple]:
    """Every action enabled in ``state``, in deterministic order.

    While an update multicast is in flight the reference has not
    completed, so only the recovery-layer actions are enabled
    (re-delivery to one missed destination, or another fully lost
    round); this is the model-level image of the atomic-reference
    discipline.
    """
    inflight = state.inflight
    if inflight is not None:
        actions: list[tuple] = [
            ("redeliver", inflight.block, dest) for dest in inflight.missed
        ]
        actions.append(("drop_round", inflight.block))
        return actions

    actions = []
    for block, bs in enumerate(state.blocks):
        for node in range(cfg.n_nodes):
            actions.append(("read", node, block))
            actions.append(("write", node, block))
        if cfg.evicts:
            for node in range(cfg.n_nodes):
                if bs.copies[node] is not None:
                    actions.append(("evict", node, block))
        if cfg.set_modes and not bs.degraded:
            for node in range(cfg.n_nodes):
                actions.append(("set_mode", node, block, True))
                actions.append(("set_mode", node, block, False))
        if cfg.faults and not bs.degraded:
            actions.append(("degrade", block))
            if (
                bs.owner is not None
                and bs.dw
                and len(bs.present) > 1
            ):
                owner = bs.owner
                others = [n for n in bs.present if n != owner]
                # Every non-empty subset of the update's destinations
                # can be the missed set of a partial delivery.
                for mask in range(1, 1 << len(others)):
                    missed = tuple(
                        others[i]
                        for i in range(len(others))
                        if mask >> i & 1
                    )
                    actions.append(("write_partial", owner, block, missed))
    return actions


# ---------------------------------------------------------------------------
# Action application
# ---------------------------------------------------------------------------


def apply(cfg: ModelConfig, state: MCState, action: tuple) -> tuple[MCState, dict]:
    """Apply ``action`` to ``state``; returns ``(new_state, observation)``.

    The observation dict reports what a checker cares about beyond the
    state itself: ``read_fresh`` (did a read observe the most recent
    write?) and ``degraded`` (did this action degrade a block?).
    """
    name = action[0]
    if name == "read":
        return _apply_read(cfg, state, action[1], action[2])
    if name == "write":
        return _apply_write(cfg, state, action[1], action[2])
    if name == "evict":
        return _apply_evict(state, action[1], action[2])
    if name == "set_mode":
        return _apply_set_mode(cfg, state, action[1], action[2], action[3])
    if name == "degrade":
        bs = state.blocks[action[1]]
        new = _with_block(state, action[1], _degrade(bs, cfg.n_nodes))
        return new, {"degraded": action[1]}
    if name == "write_partial":
        return _apply_write_partial(cfg, state, action[1], action[2], action[3])
    if name == "redeliver":
        return _apply_redeliver(state, action[2])
    if name == "drop_round":
        return _apply_drop_round(cfg, state)
    raise ValueError(f"unknown model action {action!r}")


def _apply_read(
    cfg: ModelConfig, state: MCState, node: int, block: int
) -> tuple[MCState, dict]:
    assert state.inflight is None
    bs = state.blocks[block]
    if bs.degraded:
        return state, {"read_fresh": bs.mem_fresh}
    copy = bs.copies[node]
    if _valid(copy):
        # Item 1: read hit, no messages, no state change.
        return state, {"read_fresh": copy.fresh}
    if bs.owner is None:
        # 2(a), reached directly or through the placeholder chain's
        # NAK fallback: exclusive load from memory.
        new_bs = _exclusive_load(cfg, bs, node)
        return _with_block(state, block, new_bs), {"read_fresh": bs.mem_fresh}
    # 2(b), via the home module or the OWNER-field bypass: the owner
    # serves the miss per its mode.
    new_bs, fresh = _serve_read(bs, node)
    return _with_block(state, block, new_bs), {"read_fresh": fresh}


def _apply_write(
    cfg: ModelConfig, state: MCState, node: int, block: int
) -> tuple[MCState, dict]:
    assert state.inflight is None
    bs = state.blocks[block]
    if bs.degraded:
        # Memory-direct: the write lands in memory, which is therefore
        # the (new) most recent value.
        return _with_block(state, block, bs._replace(mem_fresh=True)), {}
    copy = bs.copies[node]
    if _valid(copy):
        if bs.owner != node:
            bs = _acquire_ownership(bs, node)
    else:
        bs = _miss_acquire(cfg, bs, node)
    bs = _owner_write(bs, node)
    return _with_block(state, block, bs), {}


def _apply_evict(
    state: MCState, node: int, block: int
) -> tuple[MCState, dict]:
    assert state.inflight is None
    bs = state.blocks[block]
    copy = bs.copies[node]
    assert copy is not None
    if not _valid(copy) or bs.owner != node:
        # 5(c): placeholders and UnOwned copies just clear their flag.
        return _with_block(state, block, _replace_unowned(bs, node)), {}
    if bs.present == (node,):
        # 5(a): exclusive owner -- write back if modified, then the
        # block store forgets the block.
        mem_fresh = copy.fresh if copy.modified else bs.mem_fresh
        new_bs = bs._replace(
            owner=None,
            dw=False,
            present=(),
            copies=_set_copy(bs.copies, node, None),
            mem_fresh=mem_fresh,
        )
        return _with_block(state, block, new_bs), {}
    # 5(b): hand ownership to the lowest-numbered present candidate
    # (the concrete protocol offers in sorted order and every vector
    # member holds an entry at quiescent points), then retire as 5(c).
    candidate = min(n for n in bs.present if n != node)
    bs = _acquire_ownership(bs, candidate)
    bs = _replace_unowned(bs, node)
    return _with_block(state, block, bs), {}


def _apply_set_mode(
    cfg: ModelConfig, state: MCState, node: int, block: int, to_dw: bool
) -> tuple[MCState, dict]:
    assert state.inflight is None
    bs = state.blocks[block]
    if bs.degraded:
        # A degraded block has no owner and no modes; must not re-cache.
        return state, {}
    bs = _ensure_owner(cfg, bs, node)
    if to_dw and not bs.dw:
        # Item 6: the placeholders the vector tracked hold no copies,
        # so the vector resets to the owner alone.
        bs = bs._replace(dw=True, present=(node,))
    elif not to_dw and bs.dw:
        # Item 7: invalidate every copy; each becomes a placeholder
        # naming the owner; the vector now records exactly those.
        copies = bs.copies
        for other in bs.present:
            if other == node:
                continue
            copies = _set_copy(
                copies, other, Copy(PLACEHOLDER, node, False, False)
            )
        bs = bs._replace(dw=False, copies=copies)
    return _with_block(state, block, bs), {}


def _apply_write_partial(
    cfg: ModelConfig,
    state: MCState,
    node: int,
    block: int,
    missed: tuple[int, ...],
) -> tuple[MCState, dict]:
    assert state.inflight is None
    bs = state.blocks[block]
    assert bs.owner == node and bs.dw and missed
    bs = _owner_write(bs, node, missed=missed)
    new_state = _with_block(state, block, bs)
    # The initial delivery round failed for ``missed``; the concrete
    # recovery layer has counted one round and will re-send -- unless
    # the budget is already spent.
    if 1 > cfg.max_retries:
        final = _with_block(
            new_state, block, _degrade(new_state.blocks[block], cfg.n_nodes)
        )
        return final, {"degraded": block, "retry_exhausted": missed}
    return (
        MCState(
            blocks=new_state.blocks,
            inflight=Inflight(
                block=block, writer=node, missed=tuple(sorted(missed)), rounds=1
            ),
        ),
        {},
    )


def _apply_redeliver(state: MCState, dest: int) -> tuple[MCState, dict]:
    inflight = state.inflight
    assert inflight is not None and dest in inflight.missed
    bs = state.blocks[inflight.block]
    copy = bs.copies[dest]
    assert copy is not None and copy.kind == COPY
    bs = bs._replace(
        copies=_set_copy(bs.copies, dest, copy._replace(fresh=True))
    )
    missed = tuple(d for d in inflight.missed if d != dest)
    new_state = _with_block(state, inflight.block, bs)
    if missed:
        return (
            MCState(
                blocks=new_state.blocks,
                inflight=inflight._replace(missed=missed),
            ),
            {},
        )
    # Every copy reached: the reference completes.
    return MCState(blocks=new_state.blocks, inflight=None), {}


def _apply_drop_round(
    cfg: ModelConfig, state: MCState
) -> tuple[MCState, dict]:
    inflight = state.inflight
    assert inflight is not None
    rounds = inflight.rounds + 1
    if rounds > cfg.max_retries:
        # Budget exhausted mid-update: the partially delivered write
        # cannot be aborted, so the block degrades (and the freshest
        # copy -- the writer's -- reaches memory first).
        bs = _degrade(state.blocks[inflight.block], cfg.n_nodes)
        new_state = _with_block(state, inflight.block, bs)
        return (
            MCState(blocks=new_state.blocks, inflight=None),
            {"degraded": inflight.block, "retry_exhausted": inflight.missed},
        )
    return (
        MCState(
            blocks=state.blocks, inflight=inflight._replace(rounds=rounds)
        ),
        {},
    )
