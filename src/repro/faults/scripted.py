"""Scripted, delivery-targeted fault injection for differential testing.

:class:`ScriptedInjector` replaces the probabilistic verdicts of
:class:`~repro.faults.injector.FaultInjector` with *rules*: each rule
names a delivery by its context (message kind, source, destination --
any of which may be wildcards) and a number of consecutive drops to
inflict on matching deliveries.  Because verdicts are a pure function of
the delivery context and the per-rule countdown (no RNG), the resulting
fault schedule is robust against unrelated deliveries interleaving in
the same reference -- exactly what the model-checking differential
fuzzer (:mod:`repro.mc.diff`) needs to make the abstract model and the
concrete simulator fail in lockstep.

A rule with ``drops > plan.max_retries`` exhausts the recovery layer's
retry budget on a unicast, or forces per-destination re-send exhaustion
on a multicast when every remaining destination is targeted; see
docs/MODELCHECK.md for how the fuzzer exploits this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import _CLEAN, DeliveryOutcome, FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.topology import OmegaNetwork
from repro.types import NodeId

_DROP = DeliveryOutcome(True, False, False)


@dataclass
class DropRule:
    """Drop the next ``drops`` deliveries matching the context pattern.

    ``kind``, ``source`` and ``dest`` are matched against the context the
    recovery layer passes to :meth:`ScriptedInjector.draw`; ``None``
    matches anything.  ``drops`` counts down as matches occur; an
    exhausted rule never matches again.
    """

    drops: int
    kind: str | None = None
    source: NodeId | None = None
    dest: NodeId | None = None
    #: Deliveries this rule has dropped so far (observability).
    matched: int = field(default=0, compare=False)

    def matches(
        self, kind: str | None, source: NodeId | None, dest: NodeId | None
    ) -> bool:
        """Does this rule still apply, and does the context fit it?"""
        if self.matched >= self.drops:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        if self.source is not None and source != self.source:
            return False
        if self.dest is not None and dest != self.dest:
            return False
        return True


class ScriptedInjector(FaultInjector):
    """A :class:`FaultInjector` whose verdicts follow explicit rules.

    Construct with a (possibly empty) list of :class:`DropRule` items and
    attach to a built system in place of its probabilistic injector::

        injector = ScriptedInjector(system.network, plan, rules)
        system.fault_injector = injector
        system.network.fault_injector = injector

    Dead-element handling (``route_alive``/``check_route``) is inherited
    unchanged, so scripted drops compose with dead links and switches.
    The ``plan`` passed in should normally be *clean of probabilistic
    rates* (all probabilities zero) -- its ``max_retries`` still bounds
    the recovery layer -- but this is not enforced: non-zero rates simply
    apply to deliveries no rule claims.
    """

    def __init__(
        self,
        network: OmegaNetwork,
        plan: FaultPlan,
        rules: list[DropRule] | tuple[DropRule, ...] = (),
    ) -> None:
        super().__init__(network, plan)
        self.rules: list[DropRule] = list(rules)
        #: Contexts dropped by rules, in order (observability for tests).
        self.dropped_log: list[tuple] = []

    def add_rule(self, rule: DropRule) -> None:
        """Append one more rule (rules are consulted in insertion order)."""
        self.rules.append(rule)

    def draw(
        self,
        *,
        kind: str | None = None,
        source: NodeId | None = None,
        dest: NodeId | None = None,
    ) -> DeliveryOutcome:
        """Judge one delivery by the first matching live rule.

        A match drops the delivery and decrements the rule's budget; no
        match falls through to the base class's verdict (clean unless the
        plan carries probabilistic rates).  The base draw counter still
        advances for unmatched deliveries, so ``draws`` stays the total.
        """
        for rule in self.rules:
            if rule.matches(kind, source, dest):
                rule.matched += 1
                self.draws += 1
                self.dropped_log.append((kind, source, dest))
                return _DROP
        return super().draw(kind=kind, source=source, dest=dest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for r in self.rules if r.matched < r.drops)
        return (
            f"ScriptedInjector(n_ports={self.network.n_ports}, "
            f"rules={len(self.rules)}, live={live})"
        )


def attach_scripted(system, rules=(), *, max_retries=None):
    """Build a :class:`ScriptedInjector` and attach it to ``system``.

    Convenience for tests and the differential fuzzer: wraps the system's
    network in a scripted injector carrying only ``max_retries`` (from
    the system's existing plan when present, else the default), attaches
    it to both attachment points, and returns it.
    """
    existing = system.fault_injector
    if max_retries is None:
        max_retries = (
            existing.plan.max_retries
            if existing is not None
            else FaultPlan().max_retries
        )
    scripted = ScriptedInjector(
        system.network,
        FaultPlan(max_retries=max_retries),
        rules,
    )
    system.fault_injector = scripted
    system.network.fault_injector = scripted
    return scripted
