"""Deterministic, seeded fault decisions over one omega network.

One :class:`FaultInjector` is built per :class:`~repro.sim.system.System`
whose config carries a non-empty :class:`~repro.faults.plan.FaultPlan`.
It answers two questions:

* **Is this route alive?**  The omega network has exactly one path per
  ``(source, dest)`` pair, so a dead link or switch on that path makes
  the pair permanently unreachable -- no rerouting exists.  Liveness is a
  pure function of the wiring and is memoised.
* **What happens to this delivery?**  :meth:`draw` consumes exactly
  three variates from a private ``random.Random(plan.seed)`` per
  delivery, so the fault schedule is a deterministic function of
  ``(plan, sequence of protocol sends)`` -- identical whether the
  network's route-plan memoisation is on or off, which keeps the PR 2
  cached-vs-cold equivalence proofs intact.

The injector is attached to both the system and the network
(``network.fault_injector``); :class:`~repro.network.multicast.Multicaster`
refuses to route over dead paths by raising
:class:`~repro.errors.UnreachableRouteError` *before* any traffic is
accounted, and the recovery layer in :mod:`repro.protocol.base` consults
:meth:`draw` after each successful routing.
"""

from __future__ import annotations

import random
from typing import Iterable, NamedTuple

from repro.errors import FaultInjectionError, UnreachableRouteError
from repro.faults.plan import FaultPlan
from repro.network.topology import OmegaNetwork
from repro.types import NodeId


class DeliveryOutcome(NamedTuple):
    """The injector's verdict on one message delivery."""

    dropped: bool
    duplicated: bool
    delayed: bool


_CLEAN = DeliveryOutcome(False, False, False)


class FaultInjector:
    """Fault decisions for one network under one plan."""

    def __init__(self, network: OmegaNetwork, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._validate_geometry()
        self._dead_links = frozenset(plan.dead_links)
        self._dead_switches = frozenset(plan.dead_switches)
        self._has_dead = bool(self._dead_links or self._dead_switches)
        self._has_probabilistic = (
            plan.drop_probability > 0.0
            or plan.duplicate_probability > 0.0
            or plan.delay_probability > 0.0
        )
        #: (source, dest) -> bool, filled lazily; wiring never changes.
        self._alive: dict[tuple[NodeId, NodeId], bool] = {}
        #: Deliveries judged so far (observability; not part of results).
        self.draws = 0

    def _validate_geometry(self) -> None:
        network = self.network
        n_ports, n_stages = network.n_ports, network.n_stages
        for level, position in self.plan.dead_links:
            if not (0 <= level <= n_stages and 0 <= position < n_ports):
                raise FaultInjectionError(
                    f"dead link ({level}, {position}) outside the "
                    f"{n_ports}-port network (levels 0..{n_stages}, "
                    f"positions 0..{n_ports - 1})"
                )
        for stage, index in self.plan.dead_switches:
            if not (0 <= stage < n_stages and 0 <= index < n_ports // 2):
                raise FaultInjectionError(
                    f"dead switch ({stage}, {index}) outside the "
                    f"{n_ports}-port network (stages 0..{n_stages - 1}, "
                    f"indices 0..{n_ports // 2 - 1})"
                )

    # ------------------------------------------------------------------
    # Hard failures: route liveness
    # ------------------------------------------------------------------

    def route_alive(self, source: NodeId, dest: NodeId) -> bool:
        """Does the unique ``source -> dest`` path avoid dead elements?"""
        if not self._has_dead:
            return True
        key = (source, dest)
        alive = self._alive.get(key)
        if alive is None:
            alive = self._walk_route(source, dest)
            self._alive[key] = alive
        return alive

    def _walk_route(self, source: NodeId, dest: NodeId) -> bool:
        positions = self.network.route_positions(source, dest)
        for level, position in enumerate(positions):
            if (level, position) in self._dead_links:
                return False
        for stage in range(self.network.n_stages):
            # The switch a message crosses at stage i sits in front of
            # the link it occupies at level i+1 (see routing.py).
            if (stage, positions[stage + 1] // 2) in self._dead_switches:
                return False
        return True

    def pair_alive(self, a: NodeId, b: NodeId) -> bool:
        """Can ``a`` and ``b`` exchange a request *and* its ack?

        Omega routes are not symmetric -- ``a -> b`` and ``b -> a`` use
        different links -- and the recovery layer needs both directions
        (data one way, acknowledgement back), so a pair is usable only
        when both routes are alive.
        """
        return self.route_alive(a, b) and self.route_alive(b, a)

    def unreachable_dests(
        self, source: NodeId, dests: Iterable[NodeId]
    ) -> tuple[NodeId, ...]:
        """The destinations ``source`` cannot exchange messages with."""
        if not self._has_dead:
            return ()
        return tuple(
            dest for dest in sorted(dests) if not self.pair_alive(source, dest)
        )

    def check_route(self, source: NodeId, dest: NodeId) -> None:
        """Raise :class:`UnreachableRouteError` if the path is dead.

        Called by the :class:`~repro.network.multicast.Multicaster` entry
        points before any routing or traffic accounting happens, so a
        dead path costs nothing and corrupts no counters.
        """
        if not self.route_alive(source, dest):
            raise UnreachableRouteError(
                f"no live path from port {source} to port {dest}: the "
                f"unique omega route crosses a dead link or switch",
                source=source,
                dest=dest,
            )

    # ------------------------------------------------------------------
    # Probabilistic faults: per-delivery outcomes
    # ------------------------------------------------------------------

    def draw(
        self,
        *,
        kind: str | None = None,
        source: NodeId | None = None,
        dest: NodeId | None = None,
    ) -> DeliveryOutcome:
        """Judge one delivery.

        Consumes exactly three variates per delivery whenever any
        probability is non-zero (even for the categories whose own
        probability is zero), so the variate stream stays aligned across
        plans that differ only in rates.  A dead-elements-only plan
        consumes none and is fully deterministic without the RNG.

        The keyword context (message ``kind``, ``source``, ``dest``) is
        ignored here -- outcomes stay a pure function of the draw
        *sequence*, preserving the variate-stream alignment above -- but
        lets subclasses (:class:`~repro.faults.scripted.ScriptedInjector`)
        target specific deliveries deterministically.
        """
        self.draws += 1
        if not self._has_probabilistic:
            return _CLEAN
        rng = self._rng
        plan = self.plan
        dropped = rng.random() < plan.drop_probability
        duplicated = rng.random() < plan.duplicate_probability
        delayed = rng.random() < plan.delay_probability
        return DeliveryOutcome(dropped, duplicated, delayed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(n_ports={self.network.n_ports}, "
            f"{self.plan.summary()})"
        )
