"""Chaos campaigns: fault-rate sweeps with a survival verdict.

A campaign is an ordinary :mod:`repro.runner` sweep whose cells carry
non-empty fault plans and run the *verifying* simulator with
``check_invariants_every=1`` -- every reference re-checks all six
structural invariants and the shadow-memory value oracle.  Survival means
what the issue demands: zero :class:`~repro.errors.CoherenceError` under
any injected-fault schedule.

The executor runs in ``on_error="collect"`` mode, so a cell that dies
(coherence violation, wedged recovery, retry exhaustion) becomes a
failed row in the :class:`SurvivalReport` instead of aborting the sweep,
and the campaign's exit status reflects the whole grid.

Everything in the report payload is a deterministic function of the
cells -- no wall-clock values -- so two same-seed campaign runs must
produce byte-identical report JSON; CI's chaos-smoke job diffs exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import render_table
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.runner.cache import ResultCache
from repro.runner.executor import Executor, TaskResult
from repro.runner.journal import RunJournal
from repro.runner.spec import ExperimentSpec, SweepSpec, WorkloadSpec
from repro.sim.system import SystemConfig


@dataclass(frozen=True)
class CellOutcome:
    """One campaign cell's survival verdict."""

    spec_hash: str
    description: str
    drop_rate: float
    fault_seed: int
    survived: bool
    fault_events: dict[str, int]
    cost_per_reference: float | None
    error_class: str | None
    error_summary: str | None

    def to_dict(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "description": self.description,
            "drop_rate": self.drop_rate,
            "fault_seed": self.fault_seed,
            "survived": self.survived,
            "fault_events": self.fault_events,
            "cost_per_reference": self.cost_per_reference,
            "error_class": self.error_class,
            "error_summary": self.error_summary,
        }


@dataclass(frozen=True)
class SurvivalReport:
    """The campaign verdict: one row per cell, plus the aggregate."""

    name: str
    cells: tuple[CellOutcome, ...]

    @property
    def survived(self) -> bool:
        return all(cell.survived for cell in self.cells)

    def to_dict(self) -> dict:
        """Deterministic JSON payload (no timestamps, no wall times)."""
        return {
            "campaign": self.name,
            "survived": self.survived,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self) -> str:
        """A terminal survival table."""
        rows = []
        for cell in self.cells:
            events = cell.fault_events
            rows.append(
                (
                    f"{cell.drop_rate:g}",
                    cell.fault_seed,
                    "yes" if cell.survived else "NO",
                    events.get("fault_drops", 0),
                    events.get("fault_retries", 0),
                    events.get("fault_degraded_blocks", 0),
                    (
                        f"{cell.cost_per_reference:.1f}"
                        if cell.cost_per_reference is not None
                        else cell.error_class or "failed"
                    ),
                )
            )
        return render_table(
            (
                "drop", "seed", "survived", "drops", "retries",
                "degraded", "bits/ref",
            ),
            rows,
            title=f"chaos campaign: {self.name}",
        )


def chaos_cells(
    *,
    n_nodes: int = 16,
    n_references: int = 400,
    write_fraction: float = 0.3,
    workload_seed: int = 0,
    workload_kind: str = "random",
    n_blocks: int = 24,
    drop_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    duplicate_rate: float = 0.02,
    delay_rate: float = 0.02,
    dead_links: Sequence[tuple[int, int]] = (),
    dead_switches: Sequence[tuple[int, int]] = (),
    fault_seeds: Sequence[int] = (0,),
    max_retries: int | None = None,
    protocol: str = "two-mode",
    cache_entries: int = 8,
) -> list[ExperimentSpec]:
    """The campaign grid: drop rate x fault seed, everything verifying.

    Every cell runs with ``verify=True`` and ``check_invariants_every=1``
    -- that is the whole point.  The two-mode protocol is the default and
    the only one with a degradation path for dead routes; with dead
    elements in the plan, other protocols will fail their cells (which
    the survival report then shows).
    """
    if not drop_rates:
        raise ConfigurationError("a chaos campaign needs drop rates")
    if not fault_seeds:
        raise ConfigurationError("a chaos campaign needs fault seeds")
    workload = WorkloadSpec(
        kind=workload_kind,
        n_nodes=n_nodes,
        n_references=n_references,
        write_fraction=write_fraction,
        seed=workload_seed,
        n_blocks=n_blocks,
        tasks=(
            tuple(range(min(4, n_nodes)))
            if workload_kind in ("markov", "shared-structure")
            else ()
        ),
    )
    config = SystemConfig(n_nodes=n_nodes, cache_entries=cache_entries)
    extra = {} if max_retries is None else {"max_retries": max_retries}
    return [
        ExperimentSpec(
            protocol=protocol,
            workload=workload,
            config=config,
            verify=True,
            check_invariants_every=1,
            fault_plan=FaultPlan(
                drop_probability=drop_rate,
                duplicate_probability=duplicate_rate,
                delay_probability=delay_rate,
                dead_links=tuple(dead_links),
                dead_switches=tuple(dead_switches),
                seed=fault_seed,
                **extra,
            ),
        )
        for drop_rate in drop_rates
        for fault_seed in fault_seeds
    ]


def run_campaign(
    cells: Sequence[ExperimentSpec],
    *,
    name: str = "chaos",
    workers: int = 0,
    retries: int = 0,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    trace_dir=None,
) -> SurvivalReport:
    """Run the grid in collect mode and fold results into the report.

    ``retries=0`` by default: every cell is a deterministic function of
    its spec, so a failure would only repeat (and the executor's
    classifier fails coherence violations fast regardless).

    ``trace_dir`` passes through to the :class:`Executor`: every
    surviving cell exports its trace and heatmap artifacts there (cells
    that die mid-run export nothing).  The survival report itself is
    unchanged by tracing.
    """
    executor = Executor(
        workers=workers,
        retries=retries,
        on_error="collect",
        cache=cache,
        journal=journal,
        trace_dir=trace_dir,
    )
    results = executor.run(SweepSpec(name, tuple(cells)))
    return SurvivalReport(
        name=name,
        cells=tuple(_outcome(result) for result in results),
    )


def _outcome(result: TaskResult) -> CellOutcome:
    spec = result.spec
    plan = spec.fault_plan
    drop_rate = plan.drop_probability if plan is not None else 0.0
    fault_seed = plan.seed if plan is not None else 0
    if result.report is not None:
        return CellOutcome(
            spec_hash=spec.spec_hash,
            description=spec.describe(),
            drop_rate=drop_rate,
            fault_seed=fault_seed,
            survived=True,
            fault_events=result.report.stats.fault_events(),
            cost_per_reference=result.report.cost_per_reference,
            error_class=None,
            error_summary=None,
        )
    # Keep only the final exception line: deterministic across runs
    # (full tracebacks embed absolute paths and line context that have
    # no place in a byte-compared report).
    last_line = (
        (result.error or "").strip().splitlines()[-1]
        if result.error
        else None
    )
    return CellOutcome(
        spec_hash=spec.spec_hash,
        description=spec.describe(),
        drop_rate=drop_rate,
        fault_seed=fault_seed,
        survived=False,
        fault_events={},
        cost_per_reference=None,
        error_class=result.error_class,
        error_summary=last_line,
    )
