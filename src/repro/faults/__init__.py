"""Deterministic fault injection and the recovery that survives it.

This package extends the reproduction beyond the paper's lossless-network
assumption (see DESIGN.md):

* :mod:`repro.faults.plan` -- :class:`FaultPlan`, frozen content-hashed
  fault configuration (per-delivery drop/duplicate/delay probabilities,
  dead links and switches, seed, retry budget);
* :mod:`repro.faults.injector` -- :class:`FaultInjector`, the seeded
  per-network oracle the :class:`~repro.network.multicast.Multicaster`
  and the protocol recovery layer consult;
* :mod:`repro.faults.campaign` -- chaos campaigns: fault-rate sweeps
  through the :mod:`repro.runner` executor with a survival report
  (imported lazily by the CLI; not re-exported here to keep the
  ``runner -> faults`` import direction acyclic);
* :mod:`repro.faults.incidents` -- :func:`incident_entries`, the pure
  journal-event -> flight-recorder filter the serve daemon feeds its
  :class:`~repro.obs.recorder.FlightRecorder` with.

See docs/FAULTS.md for the fault model, the recovery semantics, and the
determinism guarantees.
"""

from repro.faults.incidents import incident_entries
from repro.faults.injector import DeliveryOutcome, FaultInjector
from repro.faults.plan import DEFAULT_MAX_RETRIES, PLAN_VERSION, FaultPlan
from repro.faults.scripted import DropRule, ScriptedInjector, attach_scripted

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DeliveryOutcome",
    "DropRule",
    "FaultInjector",
    "FaultPlan",
    "PLAN_VERSION",
    "ScriptedInjector",
    "attach_scripted",
    "incident_entries",
]
