"""Journal events -> flight-recorder incidents.

The serve daemon journals everything it does
(:class:`~repro.runner.journal.RunJournal` vocabulary plus its own
``serve_*`` events); the :class:`~repro.obs.recorder.FlightRecorder`
wants only the *incidents* -- faults, failures, degradations,
rejections, mode-switch churn.  :func:`incident_entries` is that filter,
pure and stateless: one journal entry in, zero or more
``(kind, name, fields)`` triples out, ready for
``FlightRecorder.record(kind, name, **fields)``.

Living in :mod:`repro.faults` because the interesting mappings are the
fault ones: a ``task_finish`` carrying the per-incident ``fault_log``
(dead routes, retry exhaustion, block degradation -- see
``Stats.fault_event_log``) fans out into one flight event per incident,
preserving the structured attribution the PR 8 work added.
"""

from __future__ import annotations

#: Journal fields copied onto failure/retry/rejection flight events when
#: present; everything else is deliberately dropped to keep the ring
#: cheap (full detail stays in the journal).
_CONTEXT_FIELDS = ("task", "protocol", "attempt", "attempts", "reason")


def _context(entry: dict, **extra: object) -> dict:
    fields = {
        key: entry[key] for key in _CONTEXT_FIELDS if key in entry
    }
    fields.update((key, value) for key, value in extra.items()
                  if value is not None)
    return fields


def incident_entries(entry: dict) -> list[tuple[str, str, dict]]:
    """Flight-recorder triples for one journal entry (often none).

    Returns ``[(kind, name, fields), ...]``:

    * ``task_finish`` with a ``fault_log`` -> one ``fault`` event per
      logged incident (name = the incident's ``fault_*`` event), plus a
      ``mode_switch`` churn event when the task's metrics counted any;
    * ``task_failed`` -> a ``failure`` named after the error class
      (``CoherenceError`` here is what triggers an automatic dump);
    * ``task_retry`` -> a ``degradation`` (the task survived, degraded
      to another attempt);
    * ``serve_reject`` / ``serve_invalid`` -> a ``rejection``.

    Unknown and uninteresting events return ``[]`` -- the filter is
    forward-compatible with journal vocabulary growth by construction.
    """
    event = entry.get("event")
    incidents: list[tuple[str, str, dict]] = []
    if event == "task_finish":
        task = entry.get("task")
        for logged in entry.get("fault_log", ()):
            fields = {
                key: value for key, value in logged.items()
                if key != "event"
            }
            if task is not None:
                fields["task"] = task
            incidents.append(
                ("fault", logged.get("event", "fault"), fields)
            )
        switches = (
            entry.get("metrics", {})
            .get("counters", {})
            .get("mode_switches", 0)
        )
        if switches:
            incidents.append(
                ("mode_switch", "mode_switches",
                 _context(entry, count=switches))
            )
    elif event == "task_failed":
        name = entry.get("error_class") or "Error"
        incidents.append(
            ("failure", name, _context(entry, error=entry.get("error")))
        )
    elif event == "task_retry":
        incidents.append(
            ("degradation", "task_retry",
             _context(entry, error_class=entry.get("error_class")))
        )
    elif event == "serve_reject":
        incidents.append(
            ("rejection", "serve_reject",
             _context(entry, tasks=entry.get("tasks")))
        )
    elif event == "serve_invalid":
        incidents.append(
            ("rejection", "serve_invalid",
             _context(entry, error=entry.get("error")))
        )
    return incidents
