"""Frozen, content-hashed fault plans for the injection layer.

A :class:`FaultPlan` is to :class:`~repro.faults.injector.FaultInjector`
what :class:`~repro.runner.spec.ExperimentSpec` is to the executor: pure
frozen data, JSON-serialisable both ways, hashed over its canonical JSON
form.  Two plans hash equal exactly when they inject the same faults, and
the plan participates in the experiment spec's content hash so a cached
fault-free result can never be served for a faulty configuration.

The empty plan (all probabilities zero, nothing dead) is special: it is
normalised away entirely -- ``System`` builds no injector for it, the
spec serialises without a ``fault_plan`` key, and every result is
bit-identical to a run that never heard of fault injection.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import FaultInjectionError

#: Bumped if the serialised plan layout ever changes incompatibly.
PLAN_VERSION = 1

#: Retry budget applied when a plan does not choose its own: enough that
#: exhaustion needs ``drop_probability ** 17``, i.e. never at sane rates.
DEFAULT_MAX_RETRIES = 16

_PROBABILITIES = (
    "drop_probability",
    "duplicate_probability",
    "delay_probability",
)


def _canonical_pairs(pairs: object, name: str) -> tuple[tuple[int, int], ...]:
    """Validate and normalise a dead-element coordinate list.

    Coordinates are sorted and deduplicated so two plans naming the same
    elements in a different order hash identically.  Geometry (are the
    coordinates inside the network?) is checked by the injector, which
    knows the network.
    """
    try:
        canonical = sorted({(int(a), int(b)) for a, b in pairs})  # type: ignore[union-attr]
    except (TypeError, ValueError) as exc:
        raise FaultInjectionError(
            f"{name} must be (level/stage, position) integer pairs, "
            f"got {pairs!r}"
        ) from exc
    return tuple(canonical)


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs, as frozen data.

    * ``drop_probability`` / ``duplicate_probability`` /
      ``delay_probability`` -- per-delivery probabilities in ``[0, 1)``
      (1.0 is rejected: a network that drops everything cannot carry a
      protocol, and allowing it would only manufacture retry-exhaustion);
    * ``dead_links`` -- ``(level, position)`` pairs of permanently failed
      links (level ``0..m``, position ``0..N-1``);
    * ``dead_switches`` -- ``(stage, index)`` pairs of failed 2x2
      switches (stage ``0..m-1``, index ``0..N/2-1``);
    * ``seed`` -- seeds the injector's private RNG; same plan, same seed,
      same fault schedule, always;
    * ``max_retries`` -- consecutive re-sends of one message before the
      recovery layer gives up with
      :class:`~repro.errors.TransientNetworkError`.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    dead_links: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    dead_switches: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    seed: int = 0
    max_retries: int = DEFAULT_MAX_RETRIES

    def __post_init__(self) -> None:
        for name in _PROBABILITIES:
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise FaultInjectionError(
                    f"{name} must be in [0, 1), got {value}"
                )
        object.__setattr__(
            self, "dead_links", _canonical_pairs(self.dead_links, "dead_links")
        )
        object.__setattr__(
            self,
            "dead_switches",
            _canonical_pairs(self.dead_switches, "dead_switches"),
        )
        if self.max_retries < 1:
            raise FaultInjectionError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when this plan injects nothing at all."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.delay_probability == 0.0
            and not self.dead_links
            and not self.dead_switches
        )

    @property
    def plan_hash(self) -> str:
        """SHA-256 over the canonical JSON form."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    def summary(self) -> str:
        """A short human label for journals and survival reports."""
        return (
            f"drop={self.drop_probability:g}"
            f" dup={self.duplicate_probability:g}"
            f" delay={self.delay_probability:g}"
            f" dead_links={len(self.dead_links)}"
            f" dead_switches={len(self.dead_switches)}"
            f" seed={self.seed}"
        )

    def to_dict(self) -> dict:
        return {
            "version": PLAN_VERSION,
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "delay_probability": self.delay_probability,
            "dead_links": [list(pair) for pair in self.dead_links],
            "dead_switches": [list(pair) for pair in self.dead_switches],
            "seed": self.seed,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise FaultInjectionError(
                f"fault plan version {version} not supported "
                f"(this build reads version {PLAN_VERSION})"
            )
        return cls(
            drop_probability=data["drop_probability"],
            duplicate_probability=data["duplicate_probability"],
            delay_probability=data["delay_probability"],
            dead_links=tuple(tuple(pair) for pair in data["dead_links"]),
            dead_switches=tuple(
                tuple(pair) for pair in data["dead_switches"]
            ),
            seed=data["seed"],
            max_retries=data["max_retries"],
        )
