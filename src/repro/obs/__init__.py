"""repro.obs -- structured tracing, metrics and utilization heatmaps.

The observability layer of the reproduction (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.recorder` -- :class:`TraceRecorder`, typed span/event
  records on a virtual clock, hooked into the protocol, network, fault
  and simulation layers behind ``recorder=None`` defaults;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) folding into ``Stats.to_dict()`` and
  the runner journal;
* :mod:`repro.obs.heatmap` -- per-link / per-switch stage-by-position
  utilization grids over the network's flat counters;
* :mod:`repro.obs.export` -- deterministic JSONL and Chrome trace-event
  (Perfetto-loadable) exporters;
* :mod:`repro.obs.hooks` -- :func:`attach_recorder` and the traced
  runner task body behind ``Executor(trace_dir=...)`` and the CLI's
  ``--trace-dir``.

Everything is seed-deterministic: virtual timestamps, sorted keys,
fixed bucket bounds -- two same-seed runs export byte-identical files.
"""

from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    trace_lines,
    write_chrome_trace,
    write_heatmaps,
    write_jsonl,
)
from repro.obs.heatmap import (
    Heatmap,
    link_heatmap,
    network_heatmaps,
    switch_heatmap,
)
from repro.obs.hooks import attach_recorder, detach_recorder, execute_spec_traced
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.recorder import TraceEvent, TraceRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "Heatmap",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "attach_recorder",
    "chrome_trace",
    "detach_recorder",
    "execute_spec_traced",
    "link_heatmap",
    "network_heatmaps",
    "read_jsonl",
    "switch_heatmap",
    "trace_lines",
    "write_chrome_trace",
    "write_heatmaps",
    "write_jsonl",
]
