"""repro.obs -- structured tracing, metrics and utilization heatmaps.

The observability layer of the reproduction (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.recorder` -- :class:`TraceRecorder`, typed span/event
  records on a virtual clock, hooked into the protocol, network, fault
  and simulation layers behind ``recorder=None`` defaults;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) folding into ``Stats.to_dict()`` and
  the runner journal;
* :mod:`repro.obs.heatmap` -- per-link / per-switch stage-by-position
  utilization grids over the network's flat counters;
* :mod:`repro.obs.export` -- deterministic JSONL and Chrome trace-event
  (Perfetto-loadable) exporters;
* :mod:`repro.obs.hooks` -- :func:`attach_recorder` and the traced
  runner task body behind ``Executor(trace_dir=...)`` and the CLI's
  ``--trace-dir``;
* :mod:`repro.obs.telemetry` -- :class:`TelemetrySampler` time-series
  rings over a registry, Prometheus-style plaintext exposition, and the
  ``repro top`` frame renderer;
* :class:`FlightRecorder` (in :mod:`repro.obs.recorder`) -- always-on
  bounded incident ring, dumped as JSONL on coherence errors, rejection
  bursts and daemon drain.

Everything is seed-deterministic: virtual timestamps, sorted keys,
fixed bucket bounds -- two same-seed runs export byte-identical files.
"""

from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    trace_lines,
    write_chrome_trace,
    write_heatmaps,
    write_jsonl,
)
from repro.obs.heatmap import (
    Heatmap,
    link_heatmap,
    network_heatmaps,
    switch_heatmap,
)
from repro.obs.hooks import attach_recorder, detach_recorder, execute_spec_traced
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, TraceEvent, TraceRecorder
from repro.obs.telemetry import (
    TelemetrySampler,
    TimeSeriesRing,
    parse_exposition,
    prometheus_text,
    render_top,
    sparkline,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Heatmap",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "TelemetrySampler",
    "TimeSeriesRing",
    "TraceEvent",
    "TraceRecorder",
    "attach_recorder",
    "chrome_trace",
    "detach_recorder",
    "execute_spec_traced",
    "link_heatmap",
    "network_heatmaps",
    "parse_exposition",
    "prometheus_text",
    "read_jsonl",
    "render_top",
    "sparkline",
    "switch_heatmap",
    "trace_lines",
    "write_chrome_trace",
    "write_heatmaps",
    "write_jsonl",
]
