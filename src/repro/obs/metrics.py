"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the *aggregated* half of the observability layer (the
:class:`~repro.obs.recorder.TraceRecorder` is the per-event half): it
holds named counters (monotone), gauges (last value wins) and histograms
with **fixed, explicit bucket bounds**, so two runs of the same workload
produce byte-identical snapshots -- there is no adaptive resizing, no
wall-clock, no sampling.

Everything serialises through :meth:`MetricsRegistry.to_dict` with sorted
names, which is how metrics fold into :meth:`repro.sim.stats.Stats.to_dict`,
the runner journal's ``task_finish`` records, and JSON exhibits.  The
module is dependency-free (it imports nothing from the rest of the repo)
so any layer can use it without cycles.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram bucket upper bounds (inclusive); one overflow bucket
#: is always appended.  Powers of two, matching the quantities observed
#: by the recorder (fan-out sizes, link counts, retry depths).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Bucket bounds for request-latency histograms, in milliseconds: a
#: 1-2-5 ladder from sub-millisecond cache hits to ten-second cells.
#: Used by the serve daemon's submit->admit / admit->start timers and
#: the executor's start->finish timer (see repro.obs.telemetry).
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """A fixed-bucket histogram of integer (or float) observations.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` cells and every observation is counted somewhere.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram bounds must be non-empty, sorted and unique, "
                f"got {bounds!r}"
            )
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0

    def observe(self, value: float, increment: int = 1) -> None:
        """Record ``increment`` observations of ``value``."""
        self.counts[bisect_left(self.bounds, value)] += increment
        self.total += increment
        self.sum += value * increment

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket holding the target rank,
        taking the previous bound (0 below the first) as the bucket's
        lower edge.  Observations in the overflow bucket clamp to the
        last bound -- the histogram cannot know how far above it they
        landed.  ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return None
        target = q * self.total
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            count = self.counts[index]
            if count and cumulative + count >= target:
                fraction = (target - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        return float(self.bounds[-1])

    def percentiles(self) -> dict[str, float]:
        """``{"p50", "p90", "p99"}`` estimates; ``{}`` when empty."""
        if self.total == 0:
            return {}
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(total={self.total}, bounds={self.bounds})"


class MetricsRegistry:
    """Named counters, gauges and histograms with deterministic snapshots.

    Names are plain strings; metric kinds live in separate namespaces, so
    a counter and a histogram may share a name (they serialise under
    different keys).  All mutators are get-or-create, which keeps call
    sites one-liners: ``metrics.inc("messages")``,
    ``metrics.observe("multicast_fanout", 5)``.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; the last value wins."""
        self.gauges[name] = value

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created with ``bounds`` if new."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds)
            self.histograms[name] = hist
        return hist

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation in histogram ``name``."""
        self.histogram(name, bounds).observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and histogram cells add; gauges take the other's value
        (last writer wins, matching :meth:`set_gauge`).  Histograms with
        the same name must have the same bounds.
        """
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, theirs in other.histograms.items():
            mine = self.histogram(name, theirs.bounds)
            if mine.bounds != theirs.bounds:
                raise ValueError(
                    f"histogram {name!r} bounds differ: "
                    f"{mine.bounds} vs {theirs.bounds}"
                )
            for index, count in enumerate(theirs.counts):
                mine.counts[index] += count
            mine.total += theirs.total
            mine.sum += theirs.sum

    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when nothing has been recorded (snapshot would be ``{}``s)."""
        return not (self.counters or self.gauges or self.histograms)

    def to_dict(self) -> dict:
        """Deterministic (sorted-name) snapshot; round-trips ``from_dict``."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        registry.counters.update(data.get("counters", {}))
        registry.gauges.update(data.get("gauges", {}))
        for name, payload in data.get("histograms", {}).items():
            hist = Histogram(tuple(payload["bounds"]))
            hist.counts = list(payload["counts"])
            hist.total = payload["total"]
            hist.sum = payload["sum"]
            registry.histograms[name] = hist
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)})"
        )
