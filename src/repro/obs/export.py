"""Trace exporters: JSONL and Chrome trace-event format.

Both exporters are deterministic: records serialise with sorted keys and
compact separators, timestamps are the recorder's virtual ticks (never
the wall clock), and event order is a stable sort by timestamp.  Two
same-seed runs therefore produce byte-identical files, which is what the
CI trace-smoke job ``cmp``\\ s.

The Chrome trace-event output follows the documented JSON-array format
(``{"traceEvents": [...]}``): ``reference`` spans become ``ph: "X"``
complete events, everything else becomes ``ph: "i"`` instants with
thread scope, and ticks are reported as microseconds so Perfetto and
``chrome://tracing`` render them directly (File > Open trace).
"""

from __future__ import annotations

import json
from pathlib import Path

#: JSON settings shared by every exporter; key order and separators are
#: part of the on-disk format, not a style choice.
_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


def trace_lines(recorder) -> list[str]:
    """One compact JSON document per event, in emission order."""
    return [
        json.dumps(event.to_dict(), **_JSON_KWARGS)
        for event in recorder.events
    ]


def write_jsonl(recorder, path) -> Path:
    """Write the recorder's events as JSONL; returns the path written."""
    path = Path(path)
    body = "".join(line + "\n" for line in trace_lines(recorder))
    path.write_text(body, encoding="utf-8")
    return path


def read_jsonl(path) -> list[dict]:
    """Parse a JSONL trace back into event dictionaries."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def chrome_trace(recorder, *, process_name: str = "repro") -> dict:
    """The recorder's events as a Chrome trace-event JSON document.

    Events are stably sorted by ``ts`` (spans carry the tick they were
    *opened* at, so without the sort a long span would appear after the
    instants it encloses and viewers that require non-decreasing
    timestamps would reject the file).
    """
    trace_events = [
        {
            "args": {"name": process_name},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
        }
    ]
    for event in sorted(recorder.events, key=lambda e: e.ts):
        record = {
            "args": dict(event.args),
            "cat": event.kind,
            "name": event.name,
            "pid": 1,
            "tid": event.tid,
            "ts": event.ts,
        }
        if event.kind == "reference":
            record["ph"] = "X"
            record["dur"] = event.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def write_chrome_trace(recorder, path, *, process_name: str = "repro") -> Path:
    """Write a Perfetto-loadable trace file; returns the path written."""
    path = Path(path)
    document = chrome_trace(recorder, process_name=process_name)
    path.write_text(
        json.dumps(document, **_JSON_KWARGS) + "\n", encoding="utf-8"
    )
    return path


def write_heatmaps(network, path) -> Path:
    """Write :func:`repro.obs.heatmap.network_heatmaps` JSON to ``path``."""
    from repro.obs.heatmap import network_heatmaps

    path = Path(path)
    path.write_text(
        json.dumps(network_heatmaps(network), **_JSON_KWARGS) + "\n",
        encoding="utf-8",
    )
    return path
