"""Stage-by-position utilization heatmaps for the omega network.

The network already accounts every bit and message per link and per
switch in flat ``array('q')`` buffers (see
:meth:`~repro.network.topology.OmegaNetwork.link_utilization` /
:meth:`~repro.network.topology.OmegaNetwork.switch_utilization`); this
module folds those counters into a :class:`Heatmap` -- a dense
``rows x cols`` integer grid where rows are link levels (or switch
stages) and columns are positions -- and renders it either as
deterministic JSON (:meth:`Heatmap.to_dict`, sorted keys, pure
integers) or as an ASCII grid (:meth:`Heatmap.render`) for terminals.

The ASCII rendering scales each cell against the grid maximum into a
fixed intensity ramp, so it is deterministic too: same counters, same
characters.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Intensity ramp for ASCII cells, blank (zero) to ``@`` (grid maximum).
INTENSITY = " .:-=+*#%@"

#: Widest ASCII row :meth:`Heatmap.render` will emit before folding
#: columns.  N=1024 networks have 1024-column grids; one character per
#: column is unreadable in any terminal, so wider grids fold groups of
#: adjacent columns into one cell (group maximum, so hot spots survive)
#: and the header says so.  JSON output is never folded.
MAX_RENDER_COLS = 128

#: metric name -> (utilization field, heatmap kind, row label)
_LINK_METRICS = {"bits": "bits", "messages": "messages"}
_SWITCH_METRICS = {"messages": "messages", "splits": "splits"}


class Heatmap:
    """A dense grid of utilization counters with labelled axes.

    ``rows[r][c]`` is the counter value at row ``r`` (link level or
    switch stage, top to bottom in network order) and column ``c``
    (position).  Construct via :func:`link_heatmap` /
    :func:`switch_heatmap` rather than directly.
    """

    __slots__ = ("kind", "metric", "row_label", "rows")

    def __init__(
        self, kind: str, metric: str, row_label: str, rows: list[list[int]]
    ) -> None:
        self.kind = kind
        self.metric = metric
        self.row_label = row_label
        self.rows = rows

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    @property
    def max_value(self) -> int:
        return max((max(row) for row in self.rows), default=0)

    def to_dict(self) -> dict:
        """Deterministic JSON form (integers only, fixed key order)."""
        return {
            "kind": self.kind,
            "metric": self.metric,
            "row_label": self.row_label,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "max": self.max_value,
            "rows": [list(row) for row in self.rows],
        }

    def render(self, max_cols: int | None = None) -> str:
        """ASCII grid: one intensity character per cell, plus row totals.

        Cells scale linearly against the grid maximum into
        :data:`INTENSITY`; a zero cell is blank, the maximum is ``@``.

        Grids wider than ``max_cols`` (default :data:`MAX_RENDER_COLS`)
        fold groups of adjacent columns into one cell holding the group
        **maximum** -- folding never hides a hot spot -- and the header
        carries an explicit ``…elided`` marker naming the fold factor.
        Row totals always sum the true (unfolded) row.
        """
        limit = MAX_RENDER_COLS if max_cols is None else max_cols
        if limit < 1:
            raise ConfigurationError(
                f"render max_cols must be >= 1, got {limit}"
            )
        fold = -(-self.n_cols // limit) if self.n_cols > limit else 1
        peak = self.max_value
        top = len(INTENSITY) - 1
        header = (
            f"{self.kind} {self.metric} heatmap "
            f"({self.n_rows} x {self.n_cols}, max={peak})"
        )
        if fold > 1:
            header += (
                f" [{fold} cols/cell, …elided: showing group maxima]"
            )
        lines = [header]
        width = len(f"{self.row_label}{self.n_rows - 1}")
        for index, row in enumerate(self.rows):
            if fold > 1:
                shown = [
                    max(row[start:start + fold])
                    for start in range(0, len(row), fold)
                ]
            else:
                shown = row
            if peak:
                cells = "".join(
                    INTENSITY[value * top // peak] for value in shown
                )
            else:
                cells = " " * len(shown)
            label = f"{self.row_label}{index}".rjust(width)
            lines.append(f"{label} |{cells}| {sum(row)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Heatmap(kind={self.kind!r}, metric={self.metric!r}, "
            f"shape=({self.n_rows}, {self.n_cols}))"
        )


def _grid(view_flat, n_rows: int, n_cols: int) -> list[list[int]]:
    return [
        list(view_flat[row * n_cols : (row + 1) * n_cols])
        for row in range(n_rows)
    ]


def link_heatmap(network, metric: str = "bits") -> Heatmap:
    """Heatmap of per-link counters: rows are link levels ``0 .. m``.

    ``metric`` is ``"bits"`` (communication cost, eq. 1 resolved per
    link) or ``"messages"`` (link traversals).
    """
    if metric not in _LINK_METRICS:
        raise ConfigurationError(
            f"link heatmap metric must be one of "
            f"{sorted(_LINK_METRICS)}, got {metric!r}"
        )
    view = network.link_utilization()
    flat = getattr(view, _LINK_METRICS[metric])
    return Heatmap(
        "links", metric, "L", _grid(flat, view.n_levels, view.n_positions)
    )


def switch_heatmap(network, metric: str = "messages") -> Heatmap:
    """Heatmap of per-switch counters: rows are switch stages ``0 .. m-1``.

    ``metric`` is ``"messages"`` (traversals) or ``"splits"`` (multicast
    tree forks inside the switch).
    """
    if metric not in _SWITCH_METRICS:
        raise ConfigurationError(
            f"switch heatmap metric must be one of "
            f"{sorted(_SWITCH_METRICS)}, got {metric!r}"
        )
    view = network.switch_utilization()
    flat = getattr(view, _SWITCH_METRICS[metric])
    return Heatmap(
        "switches",
        metric,
        "S",
        _grid(flat, view.n_stages, view.n_positions),
    )


def network_heatmaps(network) -> dict:
    """All four heatmaps of one network as a deterministic JSON document."""
    return {
        "n_ports": network.n_ports,
        "n_stages": network.n_stages,
        "link_bits": link_heatmap(network, "bits").to_dict(),
        "link_messages": link_heatmap(network, "messages").to_dict(),
        "switch_messages": switch_heatmap(network, "messages").to_dict(),
        "switch_splits": switch_heatmap(network, "splits").to_dict(),
    }
