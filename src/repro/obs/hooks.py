"""Wiring the observability layer into the protocol stack and the runner.

Two entry points:

* :func:`attach_recorder` binds a
  :class:`~repro.obs.recorder.TraceRecorder` to a protocol: the
  protocol's messaging and fault-accounting helpers start emitting trace
  events, and the recorder's :class:`~repro.obs.metrics.MetricsRegistry`
  becomes the ``metrics`` of the protocol's :class:`~repro.sim.stats.Stats`
  (so :meth:`Stats.to_dict` and the runner journal pick the aggregates
  up without further plumbing);
* :func:`execute_spec_traced` is the traced twin of
  :func:`repro.runner.executor.execute_spec` -- the executor substitutes
  it as the task body when built with ``trace_dir=...``.  It runs the
  cell with a recorder attached and exports three artifacts named by the
  spec hash: ``<hash>.trace.jsonl``, ``<hash>.chrome.json`` (Perfetto)
  and ``<hash>.heatmap.json``.  It is a module-level function so it
  survives pickling under the ``spawn`` start method.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.export import write_chrome_trace, write_heatmaps, write_jsonl
from repro.obs.recorder import TraceRecorder

#: Artifact filenames use the same spec-hash prefix as the run journal.
_HASH_PREFIX = 12


def attach_recorder(protocol, recorder: TraceRecorder) -> TraceRecorder:
    """Bind ``recorder`` to ``protocol`` (and its stats); returns it.

    Idempotent; reattaching a different recorder replaces the previous
    one.  Pass ``recorder=None``?  Then simply don't call this -- the
    protocol's default is no recorder, and that path is untouched.
    """
    protocol.recorder = recorder
    protocol.stats.metrics = recorder.metrics
    return recorder


def detach_recorder(protocol) -> None:
    """Remove any recorder from ``protocol`` (metrics stay on the stats)."""
    protocol.recorder = None


def execute_spec_traced(spec, trace_dir: str | Path):
    """Run one cell with tracing on; export trace + heatmap artifacts.

    Same build-warmup-measure sequence as
    :func:`~repro.runner.executor.execute_spec`; the recorder is attached
    only to the measured run, so the artifacts (and the metrics folded
    into the report) describe exactly what the report's counters count.
    """
    from repro.analysis.compare import default_factories
    from repro.errors import ConfigurationError
    from repro.sim.engine import run_trace
    from repro.sim.system import System

    factories = default_factories()
    if spec.protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {spec.protocol!r}; "
            f"expected one of {sorted(factories)}"
        )
    protocol = factories[spec.protocol](
        System(spec.config, fault_plan=spec.fault_plan)
    )
    references = spec.workload.build().references
    if spec.warmup:
        run_trace(
            protocol,
            references[: spec.warmup],
            verify=False,
            check_invariants_every=0,
        )
    recorder = TraceRecorder()
    report = run_trace(
        protocol,
        references[spec.warmup :],
        verify=spec.verify,
        check_invariants_every=spec.check_invariants_every,
        recorder=recorder,
    )
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    stem = spec.spec_hash[:_HASH_PREFIX]
    write_jsonl(recorder, trace_dir / f"{stem}.trace.jsonl")
    write_chrome_trace(
        recorder,
        trace_dir / f"{stem}.chrome.json",
        process_name=f"{spec.protocol} {stem}",
    )
    write_heatmaps(
        protocol.system.network, trace_dir / f"{stem}.heatmap.json"
    )
    return report


def execute_spec_with_heatmaps(spec):
    """Run one cell in-process; return ``(report, heatmaps-dict)``.

    Same build-warmup-measure sequence as
    :func:`~repro.runner.executor.execute_spec` (compiled traces
    included, unlike the traced twin above -- no recorder is attached,
    so the fast paths stay eligible), plus a
    :func:`~repro.obs.heatmap.network_heatmaps` snapshot of the
    network the measured run just drove.  The serve daemon's
    ``--stream-artifacts`` mode uses this as the task body so every
    fresh execution can stream its link/switch heatmaps to subscribed
    clients.
    """
    from repro.analysis.compare import default_factories
    from repro.errors import ConfigurationError
    from repro.obs.heatmap import network_heatmaps
    from repro.sim.engine import run_trace
    from repro.sim.system import System

    factories = default_factories()
    if spec.protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {spec.protocol!r}; "
            f"expected one of {sorted(factories)}"
        )
    protocol = factories[spec.protocol](
        System(spec.config, fault_plan=spec.fault_plan)
    )
    if spec.compiled:
        trace = spec.workload.build_compiled()
    else:
        trace = spec.workload.build().references
    if spec.warmup:
        run_trace(
            protocol,
            trace[: spec.warmup],
            verify=False,
            check_invariants_every=0,
        )
    report = run_trace(
        protocol,
        trace[spec.warmup :],
        verify=spec.verify,
        check_invariants_every=spec.check_invariants_every,
    )
    return report, network_heatmaps(protocol.system.network)
