"""Live time-series telemetry over the metrics registry.

Three pieces turn the end-of-run :class:`~repro.obs.metrics.MetricsRegistry`
into an *operational* surface (see docs/OBSERVABILITY.md, "Live
telemetry"):

* :class:`TelemetrySampler` -- periodically snapshots a registry's
  counters and gauges into bounded in-memory :class:`TimeSeriesRing`
  buffers.  Timestamps are **deterministic virtual ticks** (0, 1, 2, ...)
  when no ``now`` is passed -- the simulation-context mode, where a
  wall-clock read would break byte-identical artifacts -- and wall-clock
  seconds when the caller (the serve daemon) passes them.  Sampling is
  read-only over the registry unless gauge *sources* are registered, in
  which case each source's values are set as registry gauges first (the
  daemon uses this for queue depth, in-flight coalesced submissions,
  cache sizes and worker occupancy).  A sampler that is merely
  *importable but detached* costs the hot paths nothing: nothing consults
  it unless someone calls :meth:`TelemetrySampler.sample`.

* :func:`prometheus_text` -- renders a registry as Prometheus-style
  plaintext exposition (``# TYPE`` comments, ``_bucket{le="..."}``
  cumulative histogram rows, ``_sum`` / ``_count``).  Deterministic:
  sorted names, no timestamps.

* :func:`render_top` -- the ``repro top`` frame: rates derived from two
  successive ``metrics`` scrapes, p50/p90/p99 latency estimates from the
  registry's histograms, cache hit ratios, and sparklines of the sampled
  queue-depth and fabric-bits series.  Pure text in, text out, so it is
  testable without a terminal (and usable one-shot in CI).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.obs.heatmap import INTENSITY
from repro.obs.metrics import Histogram, MetricsRegistry

#: Default ring capacity: at the daemon's 1 s sampling cadence this is
#: four minutes of history, enough for a terminal sparkline and a
#: post-mortem glance without unbounded growth.
DEFAULT_RING_CAPACITY = 240

#: Series-name prefixes the sampler records under, one per metric kind,
#: so a counter and a gauge sharing a registry name cannot collide.
COUNTER_PREFIX = "counter."
GAUGE_PREFIX = "gauge."

_PROM_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


class TimeSeriesRing:
    """A bounded ring of ``(tick, value)`` samples; oldest drop first."""

    __slots__ = ("capacity", "dropped", "_ticks", "_values")

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._ticks: list[float] = []
        self._values: list[float] = []

    def append(self, tick: float, value: float) -> None:
        self._ticks.append(tick)
        self._values.append(value)
        if len(self._ticks) > self.capacity:
            del self._ticks[0]
            del self._values[0]
            self.dropped += 1

    def samples(self) -> list[tuple[float, float]]:
        return list(zip(self._ticks, self._values))

    def values(self) -> list[float]:
        return list(self._values)

    def last(self) -> tuple[float, float] | None:
        if not self._ticks:
            return None
        return self._ticks[-1], self._values[-1]

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "ticks": list(self._ticks),
            "values": list(self._values),
        }

    def __len__(self) -> int:
        return len(self._ticks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeriesRing(len={len(self)}, capacity={self.capacity})"


class TelemetrySampler:
    """Snapshots of a :class:`MetricsRegistry` into bounded rings.

    ``sample()`` with no argument stamps a deterministic virtual tick
    (the number of samples taken so far) -- the mode simulation contexts
    use, where wall-clock reads are forbidden.  The daemon passes
    ``sample(now=time.time())`` instead.  Every counter and gauge in the
    registry gets its own ring, named ``counter.<name>`` /
    ``gauge.<name>``; rings appear lazily the first time a metric does.
    """

    __slots__ = ("capacity", "registry", "samples_taken", "_series", "_sources")

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.registry = registry
        self.capacity = capacity
        self.samples_taken = 0
        self._series: dict[str, TimeSeriesRing] = {}
        self._sources: list[Callable[[], dict[str, float]]] = []

    def add_source(self, source: Callable[[], dict[str, float]]) -> None:
        """Register a gauge source consulted at every sample.

        ``source()`` returns ``{gauge_name: value}``; each value is set
        as a registry gauge *before* the snapshot, so sources are how a
        host (the daemon) folds live state -- queue depth, worker
        occupancy -- into both the rings and the exposition output.
        """
        self._sources.append(source)

    def sample(self, now: float | None = None) -> float:
        """Take one snapshot; returns the tick it was stamped with."""
        tick = float(self.samples_taken) if now is None else float(now)
        self.samples_taken += 1
        for source in self._sources:
            for name, value in source().items():
                self.registry.set_gauge(name, value)
        # list() copies: the registry may be appended to concurrently by
        # daemon worker threads, and a ring for a brand-new metric can
        # safely start at this sample.
        for name, value in list(self.registry.counters.items()):
            self._ring(COUNTER_PREFIX + name).append(tick, value)
        for name, value in list(self.registry.gauges.items()):
            self._ring(GAUGE_PREFIX + name).append(tick, value)
        return tick

    def _ring(self, name: str) -> TimeSeriesRing:
        ring = self._series.get(name)
        if ring is None:
            ring = TimeSeriesRing(self.capacity)
            self._series[name] = ring
        return ring

    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return self.samples_taken == 0

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> TimeSeriesRing | None:
        return self._series.get(name)

    def to_dict(self) -> dict:
        """Deterministic (sorted-name) snapshot of every ring."""
        return {
            name: ring.to_dict()
            for name, ring in sorted(self._series.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TelemetrySampler(samples={self.samples_taken}, "
            f"series={len(self._series)})"
        )


# ---------------------------------------------------------------------------
# Prometheus-style plaintext exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str, prefix: str) -> str:
    return prefix + _PROM_SAFE.sub("_", name)


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(
    registry: MetricsRegistry, *, prefix: str = "repro_"
) -> str:
    """Render ``registry`` as Prometheus plaintext exposition format.

    Counters, gauges, then histograms, each sorted by name; histogram
    buckets are emitted cumulatively with inclusive ``le`` labels plus
    the ``+Inf`` overflow row, and ``_sum`` / ``_count`` follow -- the
    shape every Prometheus scraper and ``promtool`` understands.  The
    output is a pure function of the registry contents (no timestamps),
    so two identical registries expose identical bytes.
    """
    lines: list[str] = []
    for name, value in sorted(registry.counters.items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(registry.gauges.items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in sorted(registry.histograms.items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.total}')
        lines.append(f"{metric}_sum {_format_value(hist.sum)}")
        lines.append(f"{metric}_count {hist.total}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """``prometheus_text`` output back to ``{metric_name: value}``.

    Labelled samples (histogram buckets) keep their label suffix in the
    key.  Used by the CI monotonicity check and tests; lenient about
    unknown lines (comments are skipped).
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values


# ---------------------------------------------------------------------------
# Terminal rendering (repro top)
# ---------------------------------------------------------------------------


def sparkline(values: list[float], *, width: int = 48) -> str:
    """ASCII sparkline of ``values`` folded to at most ``width`` chars.

    Reuses the heatmap intensity ramp (deterministic, pure ASCII); each
    output character is the maximum of its fold group scaled against the
    series maximum, so spikes survive folding.
    """
    if not values:
        return ""
    width = max(1, width)
    fold = -(-len(values) // width)  # ceil
    folded = [
        max(values[start:start + fold])
        for start in range(0, len(values), fold)
    ]
    peak = max(folded)
    if peak <= 0:
        return " " * len(folded)
    top = len(INTENSITY) - 1
    # Blank strictly means zero: any positive value gets at least the
    # faintest ramp character.
    return "".join(
        INTENSITY[max(1, int(value * top // peak)) if value > 0 else 0]
        for value in folded
    )


def _counter_rate(
    current: dict, previous: dict | None, name: str, elapsed: float | None
) -> str:
    if previous is None or not elapsed or elapsed <= 0:
        return ""
    now = current.get("counters", {}).get(name, 0)
    then = previous.get("counters", {}).get(name, 0)
    return f" ({(now - then) / elapsed:+,.1f}/s)"


def _percentile_cell(hist: Histogram | None) -> str:
    if hist is None or hist.total == 0:
        return "-/-/-"
    pct = hist.percentiles()
    return (
        f"{pct['p50']:.1f}/{pct['p90']:.1f}/{pct['p99']:.1f}"
    )


def _hit_ratio(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "n/a"
    return f"{hits / total:.1%}"


def _series_deltas(ring_dict: dict | None) -> list[float]:
    """Per-sample deltas of a counter ring (rate shape for sparklines)."""
    if not ring_dict:
        return []
    values = ring_dict.get("values", [])
    return [
        max(0.0, later - earlier)
        for earlier, later in zip(values, values[1:])
    ]


def render_top(
    frame: dict,
    *,
    previous: dict | None = None,
    elapsed: float | None = None,
    title: str = "repro top",
) -> str:
    """One ``repro top`` frame from a daemon ``metrics`` response.

    ``frame`` (and ``previous``, the prior scrape, for rates) is the
    payload of the daemon's ``metrics`` op: ``{"metrics": <registry
    dict>, "series": <sampler dict>, "flight": ..., "draining": ...}``.
    Pure text out, so the one-shot CI mode and tests can assert on it.
    """
    registry = MetricsRegistry.from_dict(frame.get("metrics", {}))
    counters = registry.counters
    prev_metrics = previous.get("metrics") if previous else None
    series = frame.get("series", {})
    flight = frame.get("flight", {})

    lines = [
        f"{title} -- draining={frame.get('draining', False)}  "
        f"flight: {flight.get('events', 0)} events, "
        f"{flight.get('dumps', 0)} dumps"
    ]
    lines.append(
        "requests   : "
        f"submitted={counters.get('serve.requests', 0)}"
        f"{_counter_rate(frame.get('metrics', {}), prev_metrics, 'serve.requests', elapsed)}"
        f"  accepted={counters.get('serve.accepted', 0)}"
        f"  executed={counters.get('serve.executed', 0)}"
        f"{_counter_rate(frame.get('metrics', {}), prev_metrics, 'serve.executed', elapsed)}"
        f"  coalesced={counters.get('serve.coalesced', 0)}"
        f"  rejected={counters.get('serve.rejected', 0)}"
    )
    lines.append(
        "latency ms : p50/p90/p99  "
        "submit->admit "
        f"{_percentile_cell(registry.histograms.get('latency.submit_to_admit_ms'))}"
        "  admit->start "
        f"{_percentile_cell(registry.histograms.get('latency.admit_to_start_ms'))}"
        "  start->finish "
        f"{_percentile_cell(registry.histograms.get('latency.start_to_finish_ms'))}"
    )
    hot_hits = counters.get("result_cache.hot_hits", 0)
    hot_misses = counters.get("result_cache.hot_misses", 0)
    disk_hits = counters.get("result_cache.disk_hits", 0)
    disk_misses = counters.get("result_cache.disk_misses", 0)
    lines.append(
        "cache      : "
        f"hot {hot_hits}/{hot_hits + hot_misses} "
        f"(hit {_hit_ratio(hot_hits, hot_misses)})"
        f"  disk {disk_hits}/{disk_hits + disk_misses} "
        f"(hit {_hit_ratio(disk_hits, disk_misses)})"
        f"  entries={registry.gauges.get('result_cache.hot_entries', 0):g}"
    )
    lines.append(
        "throughput : "
        f"references={counters.get('serve.references', 0)}"
        f"{_counter_rate(frame.get('metrics', {}), prev_metrics, 'serve.references', elapsed)}"
        f"  fabric bits={counters.get('serve.network_bits', 0)}"
        f"{_counter_rate(frame.get('metrics', {}), prev_metrics, 'serve.network_bits', elapsed)}"
    )
    depth_ring = series.get(GAUGE_PREFIX + "serve.queue_depth", {})
    depth_values = depth_ring.get("values", [])
    depth_now = depth_values[-1] if depth_values else 0
    lines.append(
        f"queue depth: |{sparkline(depth_values)}| now={depth_now:g}"
    )
    fabric = _series_deltas(series.get(COUNTER_PREFIX + "serve.network_bits"))
    lines.append(
        f"fabric bits: |{sparkline(fabric)}| per sample"
    )
    busy = registry.gauges.get("serve.workers_busy")
    inflight = registry.gauges.get("serve.in_flight")
    depth = registry.gauges.get("serve.queue_depth")
    lines.append(
        "now        : "
        f"queue={depth if depth is not None else 0:g}  "
        f"in-flight={inflight if inflight is not None else 0:g}  "
        f"workers busy={busy if busy is not None else 0:g}"
    )
    shards = frame.get("shards")
    if shards:
        alive = sum(1 for shard in shards if shard.get("alive"))
        cells = "  ".join(
            f"#{shard.get('index')}"
            f"{'' if shard.get('alive') else ' DOWN'}"
            f" req={shard.get('requests', 0)}"
            f" exec={shard.get('executed', 0)}"
            f" restarts={shard.get('restarts', 0)}"
            for shard in shards
        )
        lines.append(
            f"shards     : {alive}/{len(shards)} alive  {cells}"
        )
    return "\n".join(lines)
