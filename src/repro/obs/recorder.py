"""Structured protocol tracing with virtual simulation time.

A :class:`TraceRecorder` captures what the protocol, network and fault
layers *did*, event by event, on a virtual clock: every recorded event
advances an integer tick, so timestamps are a pure function of the event
sequence -- never of the wall clock -- and two same-seed runs produce
byte-identical traces (see :mod:`repro.obs.export`).

Event vocabulary (the ``kind`` field):

* ``reference`` -- one processor reference as a span (``ts`` .. ``ts +
  dur``), opened/closed by :func:`repro.sim.engine.run_trace`;
* ``message`` -- one protocol message paying network cost, emitted at
  **every** :meth:`~repro.sim.stats.Stats.record_traffic` site in
  :mod:`repro.protocol.base` (primary sends, duplicates, acks, re-sends),
  so the number of ``message`` events always equals
  ``Stats.total_messages``;
* ``net_send`` -- one raw :class:`~repro.network.multicast.Multicaster`
  operation, for network-only studies (no protocol attached);
* ``mode_switches`` / ``ownership_transfers`` -- the §2.2 state events,
  named exactly after their :mod:`repro.sim.stats` counters;
* ``fault_*`` -- the fault/recovery events of :mod:`repro.faults`, again
  named after their counters (``fault_drops``, ``fault_retries``, ...),
  so trace event counts reconcile exactly with ``Stats``;
* ``multicast_round`` -- fan-out per recovery round of a multicast
  re-send (round 0 is the initial delivery attempt).

The recorder also feeds a :class:`~repro.obs.metrics.MetricsRegistry`
(fan-out and retry-depth histograms, per-scheme bits/messages counters),
so enabling tracing yields aggregates for free.  A disabled recorder is
simply ``None`` at every hook site -- one attribute test, no allocation,
bit-identical results.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import NamedTuple

from repro.obs.metrics import MetricsRegistry

#: Histogram bucket bounds for retry depth (small by construction: the
#: fault plans bound retries at single digits).
RETRY_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16)


class TraceEvent(NamedTuple):
    """One recorded occurrence on the virtual clock.

    ``ts`` is the tick the event begins at; ``dur`` is 0 for instant
    events and the span length for ``reference`` spans.  ``tid`` is the
    lane the event renders on (the node/port acting).  ``args`` is a
    tuple of ``(key, value)`` pairs, already sorted by key, so the event
    serialises deterministically without further normalisation.
    """

    ts: int
    dur: int
    kind: str
    name: str
    tid: int
    args: tuple[tuple[str, object], ...]

    def to_dict(self) -> dict:
        """JSON-ready form (the JSONL exporter writes exactly this)."""
        return {
            "ts": self.ts,
            "dur": self.dur,
            "kind": self.kind,
            "name": self.name,
            "tid": self.tid,
            "args": dict(self.args),
        }


class TraceRecorder:
    """Collects :class:`TraceEvent` records and aggregate metrics.

    Attach one to a protocol with
    :func:`repro.obs.hooks.attach_recorder` (or pass ``recorder=`` to
    :func:`repro.sim.engine.run_trace`, which attaches it for you).
    """

    __slots__ = ("events", "metrics", "_now", "_open_ref")

    def __init__(self, *, metrics: MetricsRegistry | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._now = 0
        # (start tick, name, tid, args) of the reference span in flight.
        self._open_ref: tuple[int, str, int, tuple] | None = None

    # ------------------------------------------------------------------
    # The clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The next tick to be assigned (events so far, plus open spans)."""
        return self._now

    def _tick(self) -> int:
        ts = self._now
        self._now = ts + 1
        return ts

    # ------------------------------------------------------------------
    # Generic emission
    # ------------------------------------------------------------------

    def instant(self, kind: str, name: str, tid: int, **args: object) -> None:
        """Record one instant event at the next tick."""
        self.events.append(
            TraceEvent(
                self._tick(), 0, kind, name, tid, tuple(sorted(args.items()))
            )
        )

    # ------------------------------------------------------------------
    # Reference spans (driven by the simulation engine)
    # ------------------------------------------------------------------

    def begin_reference(
        self, index: int, node: int, op: str, block: int, offset: int
    ) -> None:
        """Open the span for reference ``index`` (closed by ``end``)."""
        self._open_ref = (
            self._tick(),
            op,
            node,
            (("block", block), ("index", index), ("offset", offset)),
        )

    def end_reference(self) -> None:
        """Close the reference span opened last; spans never nest."""
        if self._open_ref is None:
            return
        start, name, tid, args = self._open_ref
        self._open_ref = None
        self.events.append(
            TraceEvent(start, self._now - start, "reference", name, tid, args)
        )

    # ------------------------------------------------------------------
    # Protocol hooks (see repro.protocol.base / .stenstrom)
    # ------------------------------------------------------------------

    def message(
        self, kind: str, source: int, dests, payload_bits: int, result
    ) -> None:
        """One protocol message and its routed outcome.

        ``result`` is the :class:`~repro.network.multicast.MulticastResult`
        the send produced; scheme, cost, links crossed and the delivered
        set all come from it, so the event describes what actually
        happened on the fabric, not just what was requested.
        """
        n_dests = len(dests)
        scheme = result.scheme.name
        links = result.links_used
        self.instant(
            "message",
            kind,
            source,
            bits=payload_bits,
            cost=result.cost,
            delivered=len(result.delivered),
            dests=n_dests,
            links=links,
            scheme=scheme,
        )
        metrics = self.metrics
        metrics.inc("messages")
        metrics.inc(f"scheme_{scheme}_messages")
        metrics.inc(f"scheme_{scheme}_bits", result.cost)
        if n_dests > 1:
            metrics.observe("multicast_fanout", n_dests)
            metrics.observe("multicast_links", links)

    def mode_switch(self, block: int, node: int, to_mode: str) -> None:
        """The owner switched ``block`` to ``to_mode`` (§2.2 items 6/7)."""
        self.instant("mode_switches", to_mode, node, block=block)
        self.metrics.inc("mode_switches")

    def ownership_transfer(
        self, block: int, old_owner: int, new_owner: int
    ) -> None:
        """Ownership of ``block`` moved between caches (§2.2 items 3/4)."""
        self.instant(
            "ownership_transfers",
            f"block {block}",
            new_owner,
            block=block,
            from_owner=old_owner,
        )
        self.metrics.inc("ownership_transfers")

    def fault(self, name: str, tid: int, **args: object) -> None:
        """One fault/recovery occurrence; ``name`` is the Stats counter.

        Emitted at exactly the sites that increment the matching
        ``fault_*`` counter, so per-name event counts and counters agree.
        """
        self.instant(name, name, tid, **args)
        self.metrics.inc(name)
        if name == "fault_retries":
            attempt = args.get("attempt")
            if attempt is not None:
                self.metrics.observe(
                    "retry_depth", attempt, RETRY_BUCKETS
                )

    def multicast_round(
        self, source: int, round_index: int, n_pending: int
    ) -> None:
        """Fan-out of one delivery round of a recovering multicast."""
        self.instant(
            "multicast_round",
            f"round {round_index}",
            source,
            pending=n_pending,
            round=round_index,
        )
        self.metrics.observe("round_fanout", n_pending)

    # ------------------------------------------------------------------
    # Network hook (see repro.network.multicast.Multicaster)
    # ------------------------------------------------------------------

    def net_send(self, source: int, payload_bits: int, result) -> None:
        """One raw multicaster operation (network-only studies)."""
        self.instant(
            "net_send",
            result.scheme.name,
            source,
            bits=payload_bits,
            cost=result.cost,
            dests=len(result.requested),
            links=result.links_used,
        )
        self.metrics.inc("net_sends")

    # ------------------------------------------------------------------

    def counts_by_name(self) -> dict[str, int]:
        """Event tallies per name, sorted -- the reconciliation view."""
        tally: dict[str, int] = {}
        for event in self.events:
            tally[event.name] = tally.get(event.name, 0) + 1
        return dict(sorted(tally.items()))

    def counts_by_kind(self) -> dict[str, int]:
        """Event tallies per kind, sorted."""
        tally: dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder(events={len(self.events)}, now={self._now})"


#: Default flight-recorder capacity: enough recent incidents for a
#: post-mortem without the ring ever mattering for memory.
FLIGHT_CAPACITY = 512


class FlightRecorder:
    """An always-on bounded ring of recent incident events.

    Unlike the :class:`TraceRecorder` -- which captures *every* protocol
    event and therefore stands the fast paths down -- the flight recorder
    only sees coarse operational incidents (mode switches surfaced by
    finished tasks, fault incidents, admission rejections, degradations,
    lifecycle transitions), fed by the serve daemon's journal hook.  It
    costs one dict append per incident and nothing at all on the
    simulation hot path, so it stays attached permanently.

    On trouble -- a ``CoherenceError``, an overload rejection burst, a
    daemon drain -- :meth:`dump` writes the ring as a JSONL artifact: a
    header line naming the reason, then the retained events oldest
    first.  Thread-safe: the daemon records from worker threads and
    dumps from the event loop.
    """

    __slots__ = ("capacity", "dropped", "dumps", "_events", "_lock", "_seq")

    def __init__(self, capacity: int = FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self.dumps = 0
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, kind: str, name: str, **args: object) -> None:
        """Append one incident; the oldest drops once the ring is full."""
        with self._lock:
            event = {"seq": self._seq, "kind": kind, "name": name, **args}
            self._seq += 1
            self._events.append(event)
            if len(self._events) > self.capacity:
                del self._events[0]
                self.dropped += 1

    def snapshot(self) -> list[dict]:
        """The retained events, oldest first (copies, safe to mutate)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def dump(self, path: str | Path, *, reason: str) -> Path:
        """Write the ring as JSONL: a header line, then the events.

        The header records the dump ``reason`` plus ring bookkeeping, so
        an artifact is self-describing even when the ring wrapped.
        """
        path = Path(path)
        events = self.snapshot()
        with self._lock:
            header = {
                "flight_dump": reason,
                "events": len(events),
                "dropped": self.dropped,
                "capacity": self.capacity,
            }
            self.dumps += 1
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(events={len(self)}, capacity={self.capacity}, "
            f"dumps={self.dumps})"
        )
