"""Synthetic reference-trace generators.

The paper evaluates analytically over a Markov reference model (§4); the
trace-driven simulator needs concrete interleavings, which these modules
produce:

* :mod:`repro.workloads.markov` -- the §4 model itself: ``n`` tasks share a
  data structure, one writer per block, write fraction ``w``;
* :mod:`repro.workloads.matrix` -- the "supercomputing applications such as
  algorithms based on matrix operations" the paper's §5 motivates: Jacobi
  relaxation and blocked matrix multiply;
* :mod:`repro.workloads.sharing` -- classic sharing patterns (producer /
  consumer, migratory, ping-pong) that stress ownership transfer;
* :mod:`repro.workloads.synthetic` -- fully parameterised random traces for
  stress and property-based testing.
"""

from repro.workloads.locks import spinlock_trace
from repro.workloads.markov import markov_block_trace, shared_structure_trace
from repro.workloads.matrix import jacobi_trace, matrix_multiply_trace
from repro.workloads.sharing import (
    migratory_trace,
    ping_pong_trace,
    producer_consumer_trace,
)
from repro.workloads.synthetic import random_trace

__all__ = [
    "jacobi_trace",
    "markov_block_trace",
    "matrix_multiply_trace",
    "migratory_trace",
    "ping_pong_trace",
    "producer_consumer_trace",
    "random_trace",
    "shared_structure_trace",
    "spinlock_trace",
]
