"""Matrix-computation workloads (the applications §5 calls out).

"For any application where each block of its shared data structure is
modified by at most one task, ownership will not change.  This is true for
many supercomputing applications such as algorithms based on matrix
operations."

Two such kernels are generated as reference traces:

* :func:`jacobi_trace` -- iterative relaxation on a 1-D-partitioned grid:
  each task owns a band of rows, writes only its own band, and reads the
  boundary rows of its neighbours each sweep;
* :func:`matrix_multiply_trace` -- ``C = A x B`` with rows of ``C`` and
  ``A`` partitioned across tasks and ``B`` read by everyone (pure
  read-sharing of ``B``, single-writer ``C``).

The traces use a simple row-major word layout: matrix rows are padded to a
whole number of blocks so a row never straddles two tasks' write sets.
Values written are sequence numbers (the verifying simulator checks reads
against the latest write, not numerical convergence).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.ctrace import CompiledTrace, trace_builder
from repro.sim.trace import Trace
from repro.types import Address, NodeId


def _blocks_per_row(row_words: int, block_size_words: int) -> int:
    return (row_words + block_size_words - 1) // block_size_words


def _row_addresses(
    first_block: int,
    row: int,
    row_words: int,
    block_size_words: int,
) -> list[Address]:
    """Addresses of every word of ``row`` under padded row-major layout."""
    per_row = _blocks_per_row(row_words, block_size_words)
    addresses = []
    for word in range(row_words):
        block = first_block + row * per_row + word // block_size_words
        addresses.append(Address(block, word % block_size_words))
    return addresses


def jacobi_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    *,
    rows: int = 16,
    row_words: int = 8,
    sweeps: int = 2,
    block_size_words: int = 4,
    first_block: int = 0,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """Jacobi relaxation, rows banded across ``tasks``.

    Each sweep, every task reads its own rows plus the rows adjacent to its
    band (owned by its neighbours), then writes its own rows.  Each row has
    exactly one writing task for the whole run -- the paper's stable
    ownership case.
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    if rows < len(tasks):
        raise ConfigurationError(
            f"need at least one row per task ({rows} rows, "
            f"{len(tasks)} tasks)"
        )
    if sweeps < 0:
        raise ConfigurationError(f"sweeps must be non-negative, got {sweeps}")
    for task in tasks:
        if not 0 <= task < n_nodes:
            raise ConfigurationError(f"task {task} outside 0..{n_nodes - 1}")

    n_tasks = len(tasks)
    band = rows // n_tasks
    owner_of_row = [
        tasks[min(row // band, n_tasks - 1)] for row in range(rows)
    ]
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(sweeps):
        for task_index, task in enumerate(tasks):
            low = task_index * band
            high = rows if task_index == n_tasks - 1 else low + band
            read_rows = range(max(0, low - 1), min(rows, high + 1))
            for row in read_rows:
                for address in _row_addresses(
                    first_block, row, row_words, block_size_words
                ):
                    builder.read(task, address.block, address.offset)
            for row in range(low, high):
                assert owner_of_row[row] == task
                for address in _row_addresses(
                    first_block, row, row_words, block_size_words
                ):
                    builder.write(
                        task, address.block, address.offset, next_value
                    )
                    next_value += 1
    return builder.build()


def matrix_multiply_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    *,
    size: int = 8,
    block_size_words: int = 4,
    first_block: int = 0,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """Blocked ``C = A x B`` with ``C``/``A`` rows partitioned by task.

    ``B`` occupies the blocks after ``A`` and is only ever read -- the
    read-only sharing the software schemes of §1 would simply mark
    cacheable, and a case the protocol must also handle cheaply.
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    if size < len(tasks):
        raise ConfigurationError(
            f"need at least one row per task ({size} rows, "
            f"{len(tasks)} tasks)"
        )
    for task in tasks:
        if not 0 <= task < n_nodes:
            raise ConfigurationError(f"task {task} outside 0..{n_nodes - 1}")

    per_row = _blocks_per_row(size, block_size_words)
    a_first = first_block
    b_first = a_first + size * per_row
    c_first = b_first + size * per_row
    n_tasks = len(tasks)
    band = size // n_tasks
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for task_index, task in enumerate(tasks):
        low = task_index * band
        high = size if task_index == n_tasks - 1 else low + band
        for i in range(low, high):
            a_row = _row_addresses(a_first, i, size, block_size_words)
            c_row = _row_addresses(c_first, i, size, block_size_words)
            for j in range(size):
                for k in range(size):
                    a_word = a_row[k]
                    builder.read(task, a_word.block, a_word.offset)
                    b_word = _row_addresses(
                        b_first, k, size, block_size_words
                    )[j]
                    builder.read(task, b_word.block, b_word.offset)
                c_word = c_row[j]
                builder.write(task, c_word.block, c_word.offset, next_value)
                next_value += 1
    return builder.build()
