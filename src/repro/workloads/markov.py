"""The §4 reference model as a trace generator.

"Consider a parallel application where ``n`` tasks access a shared
read-write data structure.  For each block in the data structure we assume
that exactly one task modifies it and all other tasks access it.  The
fraction of writes to the block is ``w``."

:func:`markov_block_trace` realises that model for one block;
:func:`shared_structure_trace` for a whole structure of blocks, each with
its own writer.  Values written are sequence numbers so the verifying
simulator can detect any stale read.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.ctrace import CompiledTrace, trace_builder
from repro.sim.trace import Trace
from repro.types import NodeId


def _check_tasks(tasks: Sequence[NodeId], n_nodes: int) -> None:
    if not tasks:
        raise ConfigurationError("need at least one task")
    for task in tasks:
        if not 0 <= task < n_nodes:
            raise ConfigurationError(
                f"task {task} outside 0..{n_nodes - 1}"
            )
    if len(set(tasks)) != len(tasks):
        raise ConfigurationError(f"duplicate tasks in {list(tasks)}")


def markov_block_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    write_fraction: float,
    n_references: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
    writer: NodeId | None = None,
    seed: int = 0,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """References of ``tasks`` to one shared block, one writing task.

    Each reference is a write with probability ``write_fraction`` (issued
    by ``writer``, default the first task) and otherwise a read by a
    uniformly random task.  Offsets are uniform over the block.

    ``compiled=True`` emits a columnar
    :class:`~repro.sim.ctrace.CompiledTrace` instead (same RNG draw order,
    so the streams are identical reference for reference).
    """
    _check_tasks(tasks, n_nodes)
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write fraction must be in [0, 1], got {write_fraction}"
        )
    if n_references < 0:
        raise ConfigurationError(
            f"n_references must be non-negative, got {n_references}"
        )
    chosen_writer = tasks[0] if writer is None else writer
    if chosen_writer not in tasks:
        raise ConfigurationError(
            f"writer {chosen_writer} is not one of the tasks {list(tasks)}"
        )
    rng = random.Random(seed)
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_references):
        offset = rng.randrange(block_size_words)
        if rng.random() < write_fraction:
            builder.write(chosen_writer, block, offset, next_value)
            next_value += 1
        else:
            reader = tasks[rng.randrange(len(tasks))]
            builder.read(reader, block, offset)
    return builder.build()


def shared_structure_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    write_fraction: float,
    n_references: int,
    *,
    n_blocks: int = 8,
    first_block: int = 0,
    block_size_words: int = 4,
    seed: int = 0,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """References to a structure of ``n_blocks`` blocks, writers rotating.

    Block ``first_block + i`` is written (only) by ``tasks[i % len(tasks)]``
    and read by everyone -- the paper's whole-structure model, where
    ownership never needs to change once established.
    """
    _check_tasks(tasks, n_nodes)
    if n_blocks <= 0:
        raise ConfigurationError(
            f"n_blocks must be positive, got {n_blocks}"
        )
    rng = random.Random(seed)
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_references):
        index = rng.randrange(n_blocks)
        block = first_block + index
        offset = rng.randrange(block_size_words)
        if rng.random() < write_fraction:
            writer = tasks[index % len(tasks)]
            builder.write(writer, block, offset, next_value)
            next_value += 1
        else:
            reader = tasks[rng.randrange(len(tasks))]
            builder.read(reader, block, offset)
    return builder.build()
