"""Fully parameterised random traces for stress and property testing.

:func:`random_trace` draws every dimension -- which node references, which
block, read or write, with what temporal locality -- from a seeded RNG, so
the property-based tests can explore protocol state space far beyond the
structured workloads while staying reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.ctrace import CompiledTrace, trace_builder
from repro.sim.trace import Trace
from repro.types import NodeId


def random_trace(
    n_nodes: int,
    n_references: int,
    *,
    n_blocks: int = 8,
    block_size_words: int = 4,
    write_fraction: float = 0.3,
    locality: float = 0.5,
    nodes: Sequence[NodeId] | None = None,
    seed: int = 0,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """A seeded random reference stream.

    ``locality`` is the probability that a reference repeats the issuing
    node's previous block (temporal locality knob); otherwise a block is
    drawn uniformly.  Any node may write any block -- deliberately harsher
    than the paper's single-writer model, to exercise ownership transfer.
    """
    if n_references < 0:
        raise ConfigurationError(
            f"n_references must be non-negative, got {n_references}"
        )
    if n_blocks <= 0:
        raise ConfigurationError(f"n_blocks must be positive, got {n_blocks}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    if not 0.0 <= locality <= 1.0:
        raise ConfigurationError(
            f"locality must be in [0, 1], got {locality}"
        )
    chosen_nodes = list(range(n_nodes)) if nodes is None else list(nodes)
    for node in chosen_nodes:
        if not 0 <= node < n_nodes:
            raise ConfigurationError(f"node {node} outside 0..{n_nodes - 1}")
    if not chosen_nodes:
        raise ConfigurationError("need at least one referencing node")

    rng = random.Random(seed)
    last_block: dict[NodeId, int] = {}
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_references):
        node = chosen_nodes[rng.randrange(len(chosen_nodes))]
        if node in last_block and rng.random() < locality:
            block = last_block[node]
        else:
            block = rng.randrange(n_blocks)
        last_block[node] = block
        offset = rng.randrange(block_size_words)
        if rng.random() < write_fraction:
            builder.write(node, block, offset, next_value)
            next_value += 1
        else:
            builder.read(node, block, offset)
    return builder.build()
