"""Classic sharing patterns that stress specific protocol paths.

* :func:`producer_consumer_trace` -- one writer, many readers, phase by
  phase: the distributed-write mode's best case;
* :func:`migratory_trace` -- a block read-modify-written by each task in
  turn: maximal ownership transfer (the §5 caveat: "for applications where
  several tasks can modify a block ... ownership will change which
  increases the network traffic");
* :func:`ping_pong_trace` -- two tasks alternately writing one block, the
  degenerate migratory case.

Every generator accepts ``compiled=True`` to emit a columnar
:class:`~repro.sim.ctrace.CompiledTrace` (identical stream, no
``Reference`` objects).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.ctrace import CompiledTrace, trace_builder
from repro.sim.trace import Trace
from repro.types import NodeId
from repro.workloads.markov import _check_tasks


def producer_consumer_trace(
    n_nodes: int,
    producer: NodeId,
    consumers: Sequence[NodeId],
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """``n_rounds`` of: producer writes every word, consumers read them."""
    _check_tasks([producer, *consumers], n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_rounds):
        for offset in range(block_size_words):
            builder.write(producer, block, offset, next_value)
            next_value += 1
        for consumer in consumers:
            for offset in range(block_size_words):
                builder.read(consumer, block, offset)
    return builder.build()


def migratory_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """Each task in turn reads then updates the block (lock-like sharing)."""
    _check_tasks(tasks, n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_rounds):
        for task in tasks:
            builder.read(task, block, 0)
            builder.write(task, block, 0, next_value)
            next_value += 1
    return builder.build()


def ping_pong_trace(
    n_nodes: int,
    first: NodeId,
    second: NodeId,
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """Two tasks alternately writing (and reading back) one word."""
    _check_tasks([first, second], n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for _ in range(n_rounds):
        for task in (first, second):
            builder.write(task, block, 0, next_value)
            builder.read(task, block, 0)
            next_value += 1
    return builder.build()
