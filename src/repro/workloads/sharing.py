"""Classic sharing patterns that stress specific protocol paths.

* :func:`producer_consumer_trace` -- one writer, many readers, phase by
  phase: the distributed-write mode's best case;
* :func:`migratory_trace` -- a block read-modify-written by each task in
  turn: maximal ownership transfer (the §5 caveat: "for applications where
  several tasks can modify a block ... ownership will change which
  increases the network traffic");
* :func:`ping_pong_trace` -- two tasks alternately writing one block, the
  degenerate migratory case.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.trace import Trace
from repro.types import Address, NodeId, Op, Reference
from repro.workloads.markov import _check_tasks


def producer_consumer_trace(
    n_nodes: int,
    producer: NodeId,
    consumers: Sequence[NodeId],
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
) -> Trace:
    """``n_rounds`` of: producer writes every word, consumers read them."""
    _check_tasks([producer, *consumers], n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    references = []
    next_value = 1
    for _ in range(n_rounds):
        for offset in range(block_size_words):
            references.append(
                Reference(
                    producer, Op.WRITE, Address(block, offset), next_value
                )
            )
            next_value += 1
        for consumer in consumers:
            for offset in range(block_size_words):
                references.append(
                    Reference(consumer, Op.READ, Address(block, offset))
                )
    return Trace(references, n_nodes, block_size_words)


def migratory_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
) -> Trace:
    """Each task in turn reads then updates the block (lock-like sharing)."""
    _check_tasks(tasks, n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    references = []
    next_value = 1
    for _ in range(n_rounds):
        for task in tasks:
            references.append(Reference(task, Op.READ, Address(block, 0)))
            references.append(
                Reference(task, Op.WRITE, Address(block, 0), next_value)
            )
            next_value += 1
    return Trace(references, n_nodes, block_size_words)


def ping_pong_trace(
    n_nodes: int,
    first: NodeId,
    second: NodeId,
    n_rounds: int,
    *,
    block: int = 0,
    block_size_words: int = 4,
) -> Trace:
    """Two tasks alternately writing (and reading back) one word."""
    _check_tasks([first, second], n_nodes)
    if n_rounds < 0:
        raise ConfigurationError(
            f"n_rounds must be non-negative, got {n_rounds}"
        )
    references = []
    next_value = 1
    for _ in range(n_rounds):
        for task in (first, second):
            references.append(
                Reference(task, Op.WRITE, Address(block, 0), next_value)
            )
            references.append(Reference(task, Op.READ, Address(block, 0)))
            next_value += 1
    return Trace(references, n_nodes, block_size_words)
