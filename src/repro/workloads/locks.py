"""Lock-based critical-section workloads.

The §5 caveat -- "for applications where several tasks can modify a block,
or when tasks can migrate, ownership will change which increases the
network traffic" -- is most acute for synchronisation variables.  This
module generates the classic pattern: tasks contend for a spinlock word,
then read-modify-write shared data inside the critical section.

The simulator has no atomic read-modify-write; a lock acquisition is
modelled as the canonical test-and-test-and-set *reference pattern*
(spin-reads of the lock word followed by the winning write), which is what
a trace-driven coherence study sees of it.  Fairness is round-robin so the
trace is deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.ctrace import CompiledTrace, trace_builder
from repro.sim.trace import Trace
from repro.types import NodeId
from repro.workloads.markov import _check_tasks


def spinlock_trace(
    n_nodes: int,
    tasks: Sequence[NodeId],
    n_acquisitions: int,
    *,
    lock_block: int = 0,
    data_block: int = 1,
    spin_reads: int = 2,
    data_words: int = 2,
    block_size_words: int = 4,
    compiled: bool = False,
) -> Trace | CompiledTrace:
    """``n_acquisitions`` critical sections, round-robin over ``tasks``.

    Per acquisition by task ``t``:

    1. ``spin_reads`` reads of the lock word by *every* contending task
       (the test-and-test-and-set spin -- everyone watches the lock);
    2. ``t`` writes the lock word (acquires);
    3. ``t`` reads then writes ``data_words`` words of the shared data
       block (the critical section);
    4. ``t`` writes the lock word again (releases).
    """
    _check_tasks(tasks, n_nodes)
    if n_acquisitions < 0:
        raise ConfigurationError(
            f"n_acquisitions must be non-negative, got {n_acquisitions}"
        )
    if spin_reads < 0:
        raise ConfigurationError(
            f"spin_reads must be non-negative, got {spin_reads}"
        )
    if not 0 < data_words <= block_size_words:
        raise ConfigurationError(
            f"data_words must be in 1..{block_size_words}, "
            f"got {data_words}"
        )
    if lock_block == data_block:
        raise ConfigurationError(
            "lock and data must live in different blocks"
        )
    builder = trace_builder(n_nodes, block_size_words, compiled=compiled)
    next_value = 1
    for acquisition in range(n_acquisitions):
        holder = tasks[acquisition % len(tasks)]
        for _ in range(spin_reads):
            for task in tasks:
                builder.read(task, lock_block, 0)
        builder.write(holder, lock_block, 0, next_value)
        next_value += 1
        for word in range(data_words):
            builder.read(holder, data_block, word)
            builder.write(holder, data_block, word, next_value)
            next_value += 1
        builder.write(holder, lock_block, 0, next_value)
        next_value += 1
    return builder.build()
