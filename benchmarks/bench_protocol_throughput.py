"""End-to-end simulator throughput: references per second per protocol.

Not a paper exhibit -- an engineering benchmark that keeps the simulator's
performance visible (and, via the assertions, its correctness at volume).
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.no_cache import NoCacheProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.protocol.write_once import WriteOnceProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.synthetic import random_trace

N_NODES = 16
TRACE = random_trace(
    N_NODES,
    5000,
    n_blocks=64,
    block_size_words=4,
    write_fraction=0.3,
    locality=0.6,
    seed=123,
)


def _config():
    return SystemConfig(
        n_nodes=N_NODES, cache_entries=16, block_size_words=4
    )


def _run(protocol_factory):
    protocol = protocol_factory(System(_config()))
    return run_trace(
        protocol, TRACE, verify=True, check_invariants_every=500
    )


def test_stenstrom_throughput(benchmark):
    report = benchmark.pedantic(
        _run, args=(StenstromProtocol,), iterations=1, rounds=3
    )
    assert report.n_references == len(TRACE)


def test_stenstrom_dw_throughput(benchmark):
    factory = lambda system: StenstromProtocol(  # noqa: E731
        system, default_mode=Mode.DISTRIBUTED_WRITE
    )
    report = benchmark.pedantic(
        _run, args=(factory,), iterations=1, rounds=3
    )
    assert report.n_references == len(TRACE)


def test_write_once_throughput(benchmark):
    report = benchmark.pedantic(
        _run, args=(WriteOnceProtocol,), iterations=1, rounds=3
    )
    assert report.n_references == len(TRACE)


def test_full_map_throughput(benchmark):
    report = benchmark.pedantic(
        _run, args=(FullMapProtocol,), iterations=1, rounds=3
    )
    assert report.n_references == len(TRACE)


def test_no_cache_throughput(benchmark):
    report = benchmark.pedantic(
        _run, args=(NoCacheProtocol,), iterations=1, rounds=3
    )
    assert report.n_references == len(TRACE)


def test_traffic_summary(benchmark):
    """Cross-protocol traffic on the same mixed workload, as a table."""

    def build():
        rows = []
        for name, factory in (
            ("two-mode (GR default)", StenstromProtocol),
            (
                "two-mode (DW default)",
                lambda s: StenstromProtocol(
                    s, default_mode=Mode.DISTRIBUTED_WRITE
                ),
            ),
            ("write-once", WriteOnceProtocol),
            ("full-map", FullMapProtocol),
            ("no-cache", NoCacheProtocol),
        ):
            report = _run(factory)
            rows.append(
                (
                    name,
                    report.network_total_bits,
                    f"{report.cost_per_reference:.1f}",
                )
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    save_exhibit(
        "protocol_traffic_mixed_workload",
        render_table(
            ("protocol", "total bits", "bits/ref"),
            rows,
            title=(
                "Mixed random workload (w=0.3, 16 nodes, verified): "
                "traffic by protocol"
            ),
        ),
    )
