"""Extension exhibit: link hot spots under the three multicast schemes.

The paper's motivation is contention on the multistage network; eq. 1
counts total bits but the *distribution* over links matters on a blocking
fabric.  This benchmark multicasts a stream of updates to 32 sharers under
each scheme and profiles the per-link load: scheme 1 concentrates traffic
at the multicast tree's first links, the vector and broadcast schemes
cross each shared link once per update.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.network.contention import link_load_profile
from repro.network.cost import adjacent_placement
from repro.network.message import Message
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.topology import OmegaNetwork

NETWORK_SIZE = 256
N_DESTS = 32
UPDATES = 50
MESSAGE_BITS = 20

SCHEMES = {
    "scheme 1 (unicasts)": multicast_scheme1,
    "scheme 2 (vector)": multicast_scheme2,
    "scheme 3 (subcube)": multicast_scheme3,
}


def _drive(scheme_fn):
    net = OmegaNetwork(NETWORK_SIZE)
    dests = adjacent_placement(NETWORK_SIZE, N_DESTS)
    message = Message(source=100, payload_bits=MESSAGE_BITS)
    for _ in range(UPDATES):
        scheme_fn(net, message, dests)
    return link_load_profile(net)


def test_multicast_hotspots(benchmark):
    def sweep():
        return {name: _drive(fn) for name, fn in SCHEMES.items()}

    profiles = benchmark.pedantic(sweep, iterations=1, rounds=1)

    # Scheme 1's busiest link carries every per-destination copy.
    # Scheme 2 crosses it once per update but pays the full N-bit vector
    # there (a real cost of the scheme the closed forms also charge);
    # scheme 3's 2m-bit tag makes the root link far lighter still.
    assert (
        profiles["scheme 1 (unicasts)"].busiest_bits
        > 3 * profiles["scheme 2 (vector)"].busiest_bits
    )
    assert (
        profiles["scheme 1 (unicasts)"].busiest_bits
        > 10 * profiles["scheme 3 (subcube)"].busiest_bits
    )

    rows = [
        (
            name,
            profile.total_bits,
            profile.busiest_bits,
            f"{profile.imbalance:.1f}x",
            str(profile.busiest_link),
        )
        for name, profile in profiles.items()
    ]
    save_exhibit(
        "hotspots",
        render_table(
            ("scheme", "total bits", "busiest link bits", "imbalance",
             "busiest link"),
            rows,
            title=(
                f"Link hot spots: {UPDATES} updates to {N_DESTS} "
                f"adjacent sharers, N={NETWORK_SIZE}"
            ),
        ),
    )
