"""Figure 6: communication cost vs destinations for schemes 1, 2' and 3.

Paper setting: N = 1024, n1 = 128 adjacently placed tasks, M = 20.  The
asserted shape is the figure's story: scheme 1 cheapest for few
destinations, scheme 2 for a moderate number, scheme 3 for many.
"""

from conftest import save_exhibit

from repro.analysis.figures import fig6_data
from repro.analysis.report import render_series
from repro.network.breakeven import breakeven_scheme3_vs_scheme2

NETWORK_SIZE = 1024
N_PARTITION = 128
MESSAGE_BITS = 20


def test_fig6_series(benchmark):
    data = benchmark(
        fig6_data, NETWORK_SIZE, N_PARTITION, MESSAGE_BITS
    )
    scheme1 = dict(data["scheme 1 (eq. 2)"])
    scheme2 = dict(data["scheme 2' (eq. 6)"])
    scheme3 = dict(data["scheme 3 (eq. 5)"])

    assert scheme1[1] == min(scheme1[1], scheme2[1], scheme3[1])
    assert scheme2[16] == min(scheme1[16], scheme2[16], scheme3[16])
    assert scheme3[128] == min(scheme1[128], scheme2[128], scheme3[128])

    point = breakeven_scheme3_vs_scheme2(
        N_PARTITION, NETWORK_SIZE, MESSAGE_BITS
    )
    rows = "\n".join(
        f"n={n:4d}  scheme1={scheme1[n]:7d}  scheme2'={scheme2[n]:7d}  "
        f"scheme3={scheme3[n]:7d}"
        for n in sorted(scheme1)
    )
    chart = render_series(
        data,
        title=(
            f"Figure 6: CC vs n (N={NETWORK_SIZE}, n1={N_PARTITION}, "
            f"M={MESSAGE_BITS})"
        ),
        log_x=True,
    )
    note = (
        f"scheme 3 first beats scheme 2' at n={point.first_winning_n}"
    )
    save_exhibit("fig6_scheme_costs", f"{chart}\n\n{rows}\n\n{note}")
