"""Ablation: mode-selection policies (§4 threshold, §5 counters).

A mixed workload with one read-mostly block and one write-heavy block.
Static policies can only be right about one of them; the measuring
policies (oracle and the owner-visible §5 selector) must beat both
statics by specialising per block.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
    StaticModePolicy,
)
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.sim.trace import Trace
from repro.workloads.markov import markov_block_trace

N_NODES = 16
TASKS = list(range(8))


def _trace() -> Trace:
    read_mostly = markov_block_trace(
        N_NODES, TASKS, write_fraction=0.03, n_references=2000,
        block=0, seed=7,
    )
    write_heavy = markov_block_trace(
        N_NODES, TASKS, write_fraction=0.8, n_references=2000,
        block=1, seed=8,
    )
    return Trace.interleave([read_mostly, write_heavy])


TRACE = _trace()

POLICIES = {
    "static DW": lambda: StaticModePolicy(Mode.DISTRIBUTED_WRITE),
    "static GR": lambda: StaticModePolicy(Mode.GLOBAL_READ),
    "oracle (true w)": lambda: OracleModePolicy(window=64),
    "adaptive (§5 counters)": lambda: AdaptiveModePolicy(window=64),
}


def _run(policy_factory):
    protocol = StenstromProtocol(
        System(SystemConfig(n_nodes=N_NODES)),
        mode_policy=policy_factory(),
    )
    return run_trace(
        protocol, TRACE, verify=True, check_invariants_every=500
    )


def test_mode_policy_ablation(benchmark):
    def sweep():
        return {name: _run(factory) for name, factory in POLICIES.items()}

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    costs = {
        name: report.cost_per_reference
        for name, report in reports.items()
    }
    # Per-block specialisation must beat both one-size-fits-all statics.
    static_best = min(costs["static DW"], costs["static GR"])
    assert costs["oracle (true w)"] < static_best
    # The owner-visible selector is allowed its documented bias but must
    # still recover most of the oracle's win.
    assert costs["adaptive (§5 counters)"] < static_best * 1.05

    rows = [
        (
            name,
            f"{costs[name]:.1f}",
            reports[name].stats.events.get("mode_switches", 0),
        )
        for name in POLICIES
    ]
    save_exhibit(
        "ablation_mode_policy",
        render_table(
            ("policy", "bits/ref", "mode switches"),
            rows,
            title=(
                "Mode-policy ablation: one read-mostly + one "
                "write-heavy block, 8 sharers"
            ),
        ),
    )
