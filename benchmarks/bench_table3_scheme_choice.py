"""Table 3: cheapest multicast scheme per (M, n) for N=1024, n1=128.

Asserts the 1 -> 2 -> 3 progression along every row and reports cell-level
agreement with the paper (observed >= 85%; the few off-by-one-column cells
sit exactly on cost crossovers, see EXPERIMENTS.md).
"""

from conftest import save_exhibit

from repro.analysis.figures import table3_data


def test_table3_scheme_choice(benchmark):
    table = benchmark(table3_data)
    for row in table.rows:
        sequence = [table.ours[(row, n)] for n in table.columns]
        assert sequence == sorted(sequence)  # schemes only move 1 -> 2 -> 3
    assert table.agreement() >= 0.85
    save_exhibit("table3_scheme_choice", table.render())
