"""Switch-level multicast at full paper scale (N = 1024).

Times the three schemes delivering to 64 destinations through the
simulated fabric and re-validates, at this scale, that measured link bits
equal the closed forms of §3.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.network import cost
from repro.network.message import Message
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.topology import OmegaNetwork

NETWORK_SIZE = 1024
MESSAGE_BITS = 20
N_DESTS = 64


def _message():
    return Message(source=5, payload_bits=MESSAGE_BITS)


def test_scheme1_simulation(benchmark):
    net = OmegaNetwork(NETWORK_SIZE)
    dests = cost.worst_case_placement(NETWORK_SIZE, N_DESTS)
    result = benchmark(
        multicast_scheme1, net, _message(), dests, commit=False
    )
    assert result.cost == cost.cc1(N_DESTS, NETWORK_SIZE, MESSAGE_BITS)


def test_scheme2_simulation(benchmark):
    net = OmegaNetwork(NETWORK_SIZE)
    dests = cost.worst_case_placement(NETWORK_SIZE, N_DESTS)
    result = benchmark(
        multicast_scheme2, net, _message(), dests, commit=False
    )
    assert result.cost == cost.cc2_worst(
        N_DESTS, NETWORK_SIZE, MESSAGE_BITS
    )


def test_scheme3_simulation(benchmark):
    net = OmegaNetwork(NETWORK_SIZE)
    dests = cost.adjacent_placement(NETWORK_SIZE, N_DESTS)
    result = benchmark(
        multicast_scheme3, net, _message(), dests, commit=False
    )
    assert result.cost == cost.cc3(N_DESTS, NETWORK_SIZE, MESSAGE_BITS)


def test_summary_table(benchmark):
    """One table: simulated == analytic for all three schemes at N=1024."""

    def build_rows():
        net = OmegaNetwork(NETWORK_SIZE)
        rows = []
        for n in (4, 16, 64, 256):
            spread = cost.worst_case_placement(NETWORK_SIZE, n)
            adjacent = cost.adjacent_placement(NETWORK_SIZE, n)
            s1 = multicast_scheme1(
                net, _message(), spread, commit=False
            ).cost
            s2 = multicast_scheme2(
                net, _message(), spread, commit=False
            ).cost
            s3 = multicast_scheme3(
                net, _message(), adjacent, commit=False
            ).cost
            assert s1 == cost.cc1(n, NETWORK_SIZE, MESSAGE_BITS)
            assert s2 == cost.cc2_worst(n, NETWORK_SIZE, MESSAGE_BITS)
            assert s3 == cost.cc3(n, NETWORK_SIZE, MESSAGE_BITS)
            rows.append((n, s1, s2, s3))
        return rows

    rows = benchmark(build_rows)
    save_exhibit(
        "multicast_simulated_vs_analytic",
        render_table(
            ("n", "scheme 1 (sim=eq2)", "scheme 2 (sim=eq3)",
             "scheme 3 (sim=eq5)"),
            rows,
            title=(
                f"Simulated link bits == closed forms "
                f"(N={NETWORK_SIZE}, M={MESSAGE_BITS})"
            ),
        ),
    )
