"""Figure 7: the write-once exclusive/shared Markov chain.

Three layers, checked against each other: the analytic transition rate
``w(1-w)`` that eq. 10 is built on, a Monte-Carlo run of the abstract
chain, and -- the strongest form -- the consistency-event rates of the
*actual simulated write-once protocol* on a §4 reference trace (its
directory recalls are the E->S transitions, its invalidation multicasts
the S->E transitions).
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.protocol.costs import WriteOnceChain
from repro.protocol.messages import MsgKind
from repro.protocol.write_once import WriteOnceProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

STEPS = 100_000
MACHINE_REFS = 8000
WRITE_FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _machine_rates(w):
    trace = markov_block_trace(
        16, list(range(8)), w, MACHINE_REFS, seed=42
    )
    protocol = WriteOnceProtocol(System(SystemConfig(n_nodes=16)))
    run_trace(protocol, trace, verify=False, check_invariants_every=0)
    messages = protocol.stats.traffic_messages
    return (
        messages[MsgKind.DIR_INVALIDATE.value] / MACHINE_REFS,
        messages[MsgKind.DIR_RECALL.value] / MACHINE_REFS,
    )


def test_fig7_markov_chain(benchmark):
    def run_all():
        return {
            w: (
                WriteOnceChain(w).simulate(STEPS, seed=42),
                _machine_rates(w),
            )
            for w in WRITE_FRACTIONS
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)

    rows = []
    for w in WRITE_FRACTIONS:
        (to_exclusive, to_shared), (inv_rate, recall_rate) = results[w]
        analytic = WriteOnceChain(w).transition_rate()
        monte_carlo = to_exclusive / STEPS
        assert abs(monte_carlo - analytic) < 0.01
        assert abs(to_shared / STEPS - analytic) < 0.01
        # The real protocol's event rates track the chain within ~20%.
        assert abs(inv_rate - analytic) < 0.2 * max(analytic, 0.05)
        assert abs(recall_rate - analytic) < 0.2 * max(analytic, 0.05)
        rows.append(
            (
                w,
                f"{analytic:.4f}",
                f"{monte_carlo:.4f}",
                f"{inv_rate:.4f}",
                f"{recall_rate:.4f}",
            )
        )
    save_exhibit(
        "fig7_markov",
        render_table(
            ("w", "w(1-w) analytic", "chain Monte-Carlo",
             "machine S->E", "machine E->S"),
            rows,
            title=(
                "Figure 7: transition rates per reference -- chain vs "
                "the simulated write-once protocol"
            ),
        ),
    )
