"""The §1 storage argument, tabulated (extension exhibit).

Exact state-memory budgets: the full-map directory's O(N M) bits against
the proposed protocol's O(C (N + log N) + M log N) bits, for machines of
growing main memory.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.memory.sizing import state_memory_comparison

N_CACHES = 1024
CACHE_ENTRIES = 1 << 12  # 4K blocks per cache


def test_state_memory_budgets(benchmark):
    memory_sizes = [1 << 20, 1 << 23, 1 << 26, 1 << 29]

    def build():
        return [
            state_memory_comparison(N_CACHES, blocks, CACHE_ENTRIES)
            for blocks in memory_sizes
        ]

    comparisons = benchmark(build)

    # The advantage must grow monotonically with main-memory size.
    ratios = [comparison.ratio for comparison in comparisons]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 50  # decisive at half-a-billion blocks

    rows = [
        (
            f"2^{comparison.memory_blocks.bit_length() - 1}",
            f"{comparison.full_map_bits / 8 / 2**20:.0f} MiB",
            f"{comparison.stenstrom_bits / 8 / 2**20:.0f} MiB",
            f"{comparison.ratio:.2f}x",
        )
        for comparison in comparisons
    ]
    save_exhibit(
        "state_memory_budgets",
        render_table(
            ("memory blocks", "full map", "proposed", "full-map/proposed"),
            rows,
            title=(
                f"State memory (N={N_CACHES} caches, "
                f"C={CACHE_ENTRIES} entries/cache)"
            ),
        ),
    )
