"""Table 4: cheapest multicast scheme per (N, n) for M=20, n1=128.

Asserts the row-wise 1 -> 2 -> 3 progression and the paper's claim that
larger networks shift the 2/3 break-even to smaller n.
"""

from conftest import save_exhibit

from repro.analysis.figures import table4_data


def test_table4_scheme_choice(benchmark):
    table = benchmark(table4_data)
    for row in table.rows:
        sequence = [table.ours[(row, n)] for n in table.columns]
        assert sequence == sorted(sequence)

    # Larger N: scheme 3 takes over at smaller n (the §3.4 claim).
    def first_scheme3(network):
        for n in table.columns:
            if table.ours[(network, n)] == 3:
                return n
        return None

    takeovers = [first_scheme3(network) for network in table.rows]
    assert takeovers == sorted(takeovers, reverse=True)
    assert table.agreement() >= 0.80
    save_exhibit("table4_scheme_choice", table.render())
