"""Extension exhibit: three answers to the O(N·M) directory problem.

The paper's §1 complaint about full-map directories had two period
answers: cap the directory (limited pointers, Dir_i B -- broadcast on
overflow) or move the state into the caches (the paper).  This exhibit
compares all three on the same read-shared workload, in both state bits
and measured traffic: the limited-pointer directory saves memory but pays
broadcast invalidations once sharers exceed its pointers; the paper's
scheme keeps exact sharing knowledge at cache-side cost.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.memory.sizing import (
    full_map_directory_bits,
    limited_pointer_directory_bits,
    stenstrom_state_bits,
)
from repro.protocol.full_map import FullMapProtocol
from repro.protocol.limited_pointer import LimitedPointerProtocol
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 32
N_SHARERS = 8
TRACE = markov_block_trace(
    N_NODES,
    tasks=list(range(N_SHARERS)),
    write_fraction=0.15,
    n_references=3000,
    seed=41,
)

PROTOCOLS = {
    "full-map": FullMapProtocol,
    "limited ptr (i=1)": lambda system: LimitedPointerProtocol(
        system, n_pointers=1
    ),
    "limited ptr (i=4)": lambda system: LimitedPointerProtocol(
        system, n_pointers=4
    ),
    "stenstrom (DW)": lambda system: StenstromProtocol(
        system, default_mode=Mode.DISTRIBUTED_WRITE
    ),
}


def _state_bits(name):
    memory_blocks, cache_entries = 1 << 20, 1 << 10
    if name == "full-map":
        return full_map_directory_bits(N_NODES, memory_blocks)
    if name.startswith("limited"):
        pointers = 1 if "i=1" in name else 4
        return limited_pointer_directory_bits(
            N_NODES, memory_blocks, pointers
        )
    return stenstrom_state_bits(N_NODES, memory_blocks, cache_entries)


def test_directory_organizations(benchmark):
    def sweep():
        reports = {}
        for name, factory in PROTOCOLS.items():
            system = System(SystemConfig(n_nodes=N_NODES))
            reports[name] = run_trace(
                factory(system),
                TRACE,
                verify=True,
                check_invariants_every=500,
            )
        return reports

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    costs = {
        name: report.cost_per_reference
        for name, report in reports.items()
    }
    # With 8 sharers, one pointer overflows: Dir_1 B must pay broadcast
    # invalidations that the full map avoids.
    assert costs["limited ptr (i=1)"] > costs["full-map"]
    # The 15%-writes shared block is exactly distributed-write territory.
    assert costs["stenstrom (DW)"] < costs["full-map"]

    rows = [
        (
            name,
            f"{costs[name]:.1f}",
            f"{_state_bits(name) / 8 / 2**20:.1f} MiB",
            reports[name].stats.events.get("directory_overflows", 0),
        )
        for name in PROTOCOLS
    ]
    save_exhibit(
        "directory_organizations",
        render_table(
            ("organisation", "bits/ref", "state memory", "overflows"),
            rows,
            title=(
                f"Directory organisations: {N_SHARERS} sharers, w=0.15, "
                f"N={N_NODES} (state sized for 1M blocks, 1K-entry "
                f"caches)"
            ),
        ),
    )
