"""Figure 8: normalized communication cost per reference vs write fraction.

Two layers:

* the analytic curves exactly as in the paper (no-cache bold reference,
  write-once dashed, two-mode solid, for several sharer counts), with the
  §4 claims asserted on the data;
* an *empirical* Figure 8 (extension): the same workloads run through the
  actual protocol machines on the simulated network, normalized the same
  way -- who-wins and crossover locations must agree with the analysis.
  The empirical grid is declared as a :class:`repro.runner.SweepSpec`
  (write fraction x protocol, with the cold-start warm-up split) and
  executed through the runner, asserting the parallel fan-out equals the
  sequential reference path.
"""

import json

import pytest
from conftest import save_exhibit

from repro.analysis.compare import default_factories
from repro.analysis.figures import fig8_data
from repro.analysis.report import render_series
from repro.protocol.costs import (
    normalized_no_cache,
    normalized_two_mode,
    normalized_write_once,
    one_traversal,
    two_mode_peak,
)
from repro.protocol.messages import MessageCosts
from repro.protocol.modes import write_fraction_threshold
from repro.runner import Executor, SweepSpec, WorkloadSpec
from repro.sim.system import SystemConfig

N_VALUES = (4, 16, 64)


def test_fig8_analytic(benchmark):
    data = benchmark(fig8_data, N_VALUES)
    reference = dict(data["no cache"])
    for n in N_VALUES:
        two_mode = dict(data[f"two-mode n={n}"])
        write_once = dict(data[f"write-once n={n}"])
        for w in reference:
            # The §4 claims: two-mode below no-cache and write-once.
            assert two_mode[w] <= reference[w] + 1e-12
            assert two_mode[w] <= write_once[w] + 1e-12
        assert max(two_mode.values()) <= two_mode_peak(n) + 1e-12
    chart = render_series(
        {
            key: value
            for key, value in data.items()
            if "n=16" in key or key == "no cache"
        },
        title="Figure 8 (n=16): normalized CC per reference vs w",
    )
    peaks = "\n".join(
        f"n={n:3d}: w1={write_fraction_threshold(n):.3f}, "
        f"two-mode peak={two_mode_peak(n):.3f} (< 2 = no-cache bound)"
        for n in N_VALUES
    )
    save_exhibit("fig8_analytic", f"{chart}\n\n{peaks}")


def test_fig8_simulated(benchmark):
    """Empirical Figure 8 on the trace-driven simulator, via the runner."""
    write_fractions = (0.05, 0.2, 0.5, 0.8, 0.95)
    n_nodes, n_sharers, warmup, references = 16, 8, 500, 2500

    sweep = SweepSpec.from_grid(
        "fig8-simulated",
        protocols=sorted(default_factories()),
        workloads=[
            WorkloadSpec(
                kind="markov",
                n_nodes=n_nodes,
                n_references=warmup + references,
                write_fraction=w,
                seed=17,
                tasks=tuple(range(n_sharers)),
            )
            for w in write_fractions
        ],
        configs=[
            SystemConfig(
                n_nodes=n_nodes, costs=MessageCosts.uniform(20)
            )
        ],
        warmup=warmup,
    )
    results = benchmark.pedantic(
        Executor(workers=0).run, args=(sweep,), iterations=1, rounds=1
    )

    # Parallel execution reproduces the sequential cells bit for bit.
    parallel = Executor(workers=4).run(sweep)
    for sequential_cell, parallel_cell in zip(results, parallel):
        assert json.dumps(
            sequential_cell.report.to_dict(), sort_keys=True
        ) == json.dumps(parallel_cell.report.to_dict(), sort_keys=True)

    unit = one_traversal(n_nodes, 20)
    curves: dict[str, list[tuple[float, float]]] = {}
    for result in results:
        curves.setdefault(result.spec.protocol, []).append(
            (
                result.spec.workload.write_fraction,
                result.report.cost_per_reference / unit,
            )
        )
    for points in curves.values():
        points.sort()

    no_cache = dict(curves["no-cache"])
    two_mode = dict(curves["two-mode"])
    write_once = dict(curves["write-once"])
    global_read = dict(curves["global-read"])
    distributed = dict(curves["distributed-write"])

    for w in write_fractions:
        # eq. 9 is exact for the uncached baseline.
        assert no_cache[w] == pytest.approx(2 - w, abs=0.1)
        # The headline claim survives the move from algebra to machine:
        # the two-mode protocol stays below the uncached cost.
        assert two_mode[w] <= no_cache[w] + 0.25

    # Mode specialisation: global-read wins the write-heavy end,
    # distributed-write the read-heavy end.
    assert distributed[0.05] < global_read[0.05]
    assert global_read[0.95] < distributed[0.95]
    # Write-once suffers mid-range thrashing relative to two-mode.
    assert two_mode[0.5] < write_once[0.5]

    chart = render_series(
        curves, title="Figure 8, simulated (n=8 sharers, N=16)"
    )
    rows = "\n".join(
        f"w={w:.2f}: "
        + "  ".join(
            f"{name}={dict(curve)[w]:6.2f}"
            for name, curve in sorted(curves.items())
        )
        for w in write_fractions
    )
    save_exhibit(
        "fig8_simulated",
        f"{chart}\n\n{rows}",
        data={
            result.spec.spec_hash: result.report.to_dict()
            for result in results
        },
    )
