"""Ablation: which multicast scheme should the protocol use (eq. 8)?

Runs the same distributed-write workload (one writer, many sharers) with
the protocol pinned to each §3 scheme and to the combined scheme.  The
combined scheme must never lose to a pinned one -- the operational content
of eq. 8 -- and the per-scheme ordering must match the analysis for this
sharer count.

The scheme grid is declared as a :class:`repro.runner.SweepSpec` (one
config per scheme, verification on) and executed through the runner; the
parallel fan-out must reproduce the sequential reference path.
"""

import json

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.network.multicast import MulticastScheme
from repro.runner import Executor, SweepSpec, WorkloadSpec
from repro.sim.system import SystemConfig

N_NODES = 64
N_SHARERS = 16

SCHEMES = (
    MulticastScheme.UNICAST,
    MulticastScheme.VECTOR,
    MulticastScheme.BROADCAST_TAG,
    MulticastScheme.COMBINED,
)


def build_sweep() -> SweepSpec:
    workload = WorkloadSpec(
        kind="markov",
        n_nodes=N_NODES,
        n_references=3000,
        write_fraction=0.3,
        seed=31,
        tasks=tuple(range(N_SHARERS)),  # adjacently placed tasks (§3.4)
    )
    return SweepSpec.from_grid(
        "ablation-multicast-scheme",
        protocols=["distributed-write"],
        workloads=[workload],
        configs=[
            SystemConfig(n_nodes=N_NODES, multicast_scheme=scheme)
            for scheme in SCHEMES
        ],
        verify=True,
        check_invariants_every=500,
    )


def test_multicast_scheme_ablation(benchmark):
    sweep = build_sweep()
    results = benchmark.pedantic(
        Executor(workers=0).run, args=(sweep,), iterations=1, rounds=1
    )

    parallel = Executor(workers=4).run(sweep)
    for sequential_cell, parallel_cell in zip(results, parallel):
        assert json.dumps(
            sequential_cell.report.to_dict(), sort_keys=True
        ) == json.dumps(parallel_cell.report.to_dict(), sort_keys=True)

    costs = {
        result.spec.config.multicast_scheme:
            result.report.cost_per_reference
        for result in results
    }
    # eq. 8: picking the cheapest scheme per multicast can only help.
    pinned_best = min(
        costs[scheme]
        for scheme in SCHEMES
        if scheme is not MulticastScheme.COMBINED
    )
    assert costs[MulticastScheme.COMBINED] <= pinned_best * 1.001

    rows = [
        (scheme.name.lower(), f"{costs[scheme]:.1f}")
        for scheme in SCHEMES
    ]
    save_exhibit(
        "ablation_multicast_scheme",
        render_table(
            ("scheme", "bits/ref"),
            rows,
            title=(
                f"Multicast scheme ablation: DW protocol, "
                f"{N_SHARERS} adjacent sharers of one block, w=0.3, "
                f"N={N_NODES}"
            ),
        ),
        data={
            result.spec.config.multicast_scheme.name.lower():
                result.report.to_dict()
            for result in results
        },
    )
