"""Ablation: which multicast scheme should the protocol use (eq. 8)?

Runs the same distributed-write workload (one writer, many sharers) with
the protocol pinned to each §3 scheme and to the combined scheme.  The
combined scheme must never lose to a pinned one -- the operational content
of eq. 8 -- and the per-scheme ordering must match the analysis for this
sharer count.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.network.multicast import MulticastScheme
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 64
N_SHARERS = 16
TRACE = markov_block_trace(
    N_NODES,
    tasks=list(range(N_SHARERS)),  # adjacently placed tasks (§3.4)
    write_fraction=0.3,
    n_references=3000,
    seed=31,
)

SCHEMES = (
    MulticastScheme.UNICAST,
    MulticastScheme.VECTOR,
    MulticastScheme.BROADCAST_TAG,
    MulticastScheme.COMBINED,
)


def _run(scheme):
    config = SystemConfig(n_nodes=N_NODES, multicast_scheme=scheme)
    protocol = StenstromProtocol(
        System(config), default_mode=Mode.DISTRIBUTED_WRITE
    )
    return run_trace(
        protocol, TRACE, verify=True, check_invariants_every=500
    )


def test_multicast_scheme_ablation(benchmark):
    def sweep():
        return {scheme: _run(scheme) for scheme in SCHEMES}

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    costs = {
        scheme: report.cost_per_reference
        for scheme, report in reports.items()
    }
    # eq. 8: picking the cheapest scheme per multicast can only help.
    pinned_best = min(
        costs[scheme]
        for scheme in SCHEMES
        if scheme is not MulticastScheme.COMBINED
    )
    assert costs[MulticastScheme.COMBINED] <= pinned_best * 1.001

    rows = [
        (scheme.name.lower(), f"{costs[scheme]:.1f}")
        for scheme in SCHEMES
    ]
    save_exhibit(
        "ablation_multicast_scheme",
        render_table(
            ("scheme", "bits/ref"),
            rows,
            title=(
                f"Multicast scheme ablation: DW protocol, "
                f"{N_SHARERS} adjacent sharers of one block, w=0.3, "
                f"N={N_NODES}"
            ),
        ),
    )
