"""Table 2: break-even between multicast schemes 1 and 2.

Sweeps N in {64..1024} x M in {0, 40, 100} and reports, next to the
paper's printed values, the smallest power-of-two n at which scheme 2's
worst case is strictly cheaper (plus the continuous crossover).  The
paper's own cells are not consistent with its eqs. 2/3 (see DESIGN.md);
the monotone *trends* it proves from eq. 4 are asserted instead.
"""

from conftest import save_exhibit

from repro.analysis.figures import (
    TABLE2_MESSAGE_SIZES,
    TABLE2_NETWORK_SIZES,
    table2_data,
)
from repro.network.breakeven import breakeven_scheme2_vs_scheme1


def test_table2_breakeven(benchmark):
    table = benchmark(table2_data)

    # The eq. 4 trends hold in every regenerated row/column.
    for network in TABLE2_NETWORK_SIZES:
        row = [table.ours[(network, m)] for m in TABLE2_MESSAGE_SIZES]
        assert row == sorted(row, reverse=True)
    for m in TABLE2_MESSAGE_SIZES:
        column = [table.ours[(network, m)] for network in TABLE2_NETWORK_SIZES]
        assert column == sorted(column)

    crossovers = "\n".join(
        f"N={network:5d} M={m:3d}: continuous crossover at "
        f"n ~ {breakeven_scheme2_vs_scheme1(network, m).crossover:.1f}"
        for network in TABLE2_NETWORK_SIZES
        for m in TABLE2_MESSAGE_SIZES
    )
    save_exhibit(
        "table2_breakeven", table.render() + "\n\n" + crossovers
    )
