"""Extension exhibit: measured cost per reference vs the sharer count n.

Figure 8 fixes n and sweeps w; this exhibit fixes w = 0.3 and sweeps n,
probing the §4 upper-bound claim from the other axis.  The analysis says:

* write-once grows without bound in n  (eq. 10: ~ w(1-w)(n+2));
* distributed-write grows in n         (eq. 11: ~ w·CC4(n));
* global-read *saturates* at the eq. 12 ceiling ``2(1-w)·CC1`` -- the
  only n-dependence is that 1/n of the reads are the owner's own (free),
  so the measured curve rises toward the ceiling and stops;
* two-mode therefore saturates at the same ceiling instead of growing --
  the mechanism behind "the two-mode approach limits the upper bound ...
  to a value considerably lower than that for other protocols"
  (abstract).

All four behaviours are asserted on the measured series.  The grid is
declared as a :class:`repro.runner.SweepSpec` and executed through the
runner; the parallel fan-out must reproduce the sequential reference
path cell for cell.
"""

import json

from conftest import save_exhibit

from repro.analysis.compare import default_factories
from repro.analysis.report import render_table
from repro.protocol.messages import MessageCosts
from repro.runner import Executor, SweepSpec, WorkloadSpec
from repro.sim.system import SystemConfig

SHARERS = (2, 4, 8, 16, 32)
WRITE_FRACTION = 0.3
N_NODES = 64


def build_sweep() -> SweepSpec:
    return SweepSpec.from_grid(
        "sharer-scaling",
        protocols=sorted(default_factories()),
        workloads=[
            WorkloadSpec(
                kind="markov",
                n_nodes=N_NODES,
                n_references=2500,
                write_fraction=WRITE_FRACTION,
                seed=13,
                tasks=tuple(range(n)),
            )
            for n in SHARERS
        ],
        configs=[
            SystemConfig(
                n_nodes=N_NODES, costs=MessageCosts.uniform(20)
            )
        ],
    )


def test_sharer_scaling(benchmark):
    sweep = build_sweep()
    results = benchmark.pedantic(
        Executor(workers=0).run, args=(sweep,), iterations=1, rounds=1
    )

    # The parallel path must be bit-identical to the sequential one.
    parallel = Executor(workers=4).run(sweep)
    for sequential_cell, parallel_cell in zip(results, parallel):
        assert json.dumps(
            sequential_cell.report.to_dict(), sort_keys=True
        ) == json.dumps(parallel_cell.report.to_dict(), sort_keys=True)

    series: dict[str, list[tuple[int, float]]] = {}
    for result in results:
        series.setdefault(result.spec.protocol, []).append(
            (
                len(result.spec.workload.tasks),
                result.report.cost_per_reference,
            )
        )
    for points in series.values():
        points.sort()

    def costs(name):
        return [cost for _, cost in series[name]]

    # Growth in n for the unbounded protocols...
    assert costs("write-once")[-1] > 1.5 * costs("write-once")[0]
    assert costs("distributed-write")[-1] > (
        2 * costs("distributed-write")[0]
    )
    # ...saturation at the eq. 12 ceiling for global read...
    from repro.network.cost import cc1

    ceiling = 2 * (1 - WRITE_FRACTION) * cc1(1, 64, 20)
    gr = costs("global-read")
    assert all(value <= ceiling * 1.1 for value in gr)
    assert gr[-1] > 0.85 * ceiling  # nearly all reads remote at n=32
    # ...and the two-mode protocol stays bounded by the same ceiling.
    assert all(value <= ceiling * 1.1 for value in costs("two-mode"))

    names = sorted(series)
    rows = [
        (f"n={n}",)
        + tuple(f"{dict(series[name])[n]:.1f}" for name in names)
        for n in SHARERS
    ]
    save_exhibit(
        "sharer_scaling",
        render_table(
            ("sharers",) + tuple(names),
            rows,
            title=(
                f"Measured bits/reference vs sharer count "
                f"(w={WRITE_FRACTION}, N=64, uniform M=20)"
            ),
        ),
        data={
            result.spec.spec_hash: result.report.to_dict()
            for result in results
        },
    )
