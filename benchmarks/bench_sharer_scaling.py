"""Extension exhibit: measured cost per reference vs the sharer count n.

Figure 8 fixes n and sweeps w; this exhibit fixes w = 0.3 and sweeps n,
probing the §4 upper-bound claim from the other axis.  The analysis says:

* write-once grows without bound in n  (eq. 10: ~ w(1-w)(n+2));
* distributed-write grows in n         (eq. 11: ~ w·CC4(n));
* global-read *saturates* at the eq. 12 ceiling ``2(1-w)·CC1`` -- the
  only n-dependence is that 1/n of the reads are the owner's own (free),
  so the measured curve rises toward the ceiling and stops;
* two-mode therefore saturates at the same ceiling instead of growing --
  the mechanism behind "the two-mode approach limits the upper bound ...
  to a value considerably lower than that for other protocols"
  (abstract).

All four behaviours are asserted on the measured series.
"""

from conftest import save_exhibit

from repro.analysis.compare import default_factories
from repro.analysis.report import render_table
from repro.analysis.sweep import series_by_protocol, sharer_sweep

SHARERS = (2, 4, 8, 16, 32)
WRITE_FRACTION = 0.3


def test_sharer_scaling(benchmark):
    factories = default_factories()
    records = benchmark.pedantic(
        sharer_sweep,
        args=(SHARERS, WRITE_FRACTION, factories),
        kwargs=dict(n_nodes=64, references=2500, seed=13),
        iterations=1,
        rounds=1,
    )
    series = series_by_protocol(records, "n_sharers")

    def costs(name):
        return [cost for _, cost in series[name]]

    # Growth in n for the unbounded protocols...
    assert costs("write-once")[-1] > 1.5 * costs("write-once")[0]
    assert costs("distributed-write")[-1] > (
        2 * costs("distributed-write")[0]
    )
    # ...saturation at the eq. 12 ceiling for global read...
    from repro.network.cost import cc1

    ceiling = 2 * (1 - WRITE_FRACTION) * cc1(1, 64, 20)
    gr = costs("global-read")
    assert all(value <= ceiling * 1.1 for value in gr)
    assert gr[-1] > 0.85 * ceiling  # nearly all reads remote at n=32
    # ...and the two-mode protocol stays bounded by the same ceiling.
    assert all(value <= ceiling * 1.1 for value in costs("two-mode"))

    names = sorted(series)
    rows = [
        (f"n={n}",)
        + tuple(f"{dict(series[name])[n]:.1f}" for name in names)
        for n in SHARERS
    ]
    save_exhibit(
        "sharer_scaling",
        render_table(
            ("sharers",) + tuple(names),
            rows,
            title=(
                f"Measured bits/reference vs sharer count "
                f"(w={WRITE_FRACTION}, N=64, uniform M=20)"
            ),
        ),
    )
