"""Shared helpers for the benchmark suite.

Every benchmark regenerates one exhibit of the paper (a table or a figure)
and writes the rendered result to ``benchmarks/results/<name>.txt`` so the
regenerated numbers are inspectable artifacts, not just timings.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_exhibit(name: str, text: str) -> str:
    """Write a rendered exhibit under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text + "\n")
    return path
