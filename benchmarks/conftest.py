"""Shared helpers for the benchmark suite.

Every benchmark regenerates one exhibit of the paper (a table or a figure)
and writes the rendered result to ``benchmarks/results/<name>.txt`` so the
regenerated numbers are inspectable artifacts, not just timings.
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_exhibit(name: str, text: str, data=None) -> str:
    """Write a rendered exhibit under ``benchmarks/results/``.

    With ``data`` given (any JSON-serialisable object, e.g. a dict of
    ``SimulationReport.to_dict()`` cells), a machine-readable
    ``<name>.json`` lands next to the human-readable ``<name>.txt``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text + "\n")
    if data is not None:
        json_path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(json_path, "w", encoding="utf-8") as stream:
            json.dump(data, stream, indent=2, sort_keys=True)
            stream.write("\n")
    return path
