"""Extension exhibit: the §5 caveat measured on a spinlock workload.

"For applications where several tasks can modify a block, or when tasks
can migrate, ownership will change which increases the network traffic."

A contended test-and-test-and-set lock is the sharpest such case: every
acquisition moves ownership of the lock word and broadcasts its value to
all spinners.  The exhibit compares the protocols and counts ownership
transfers, alongside an uncontended control run.
"""

from conftest import save_exhibit

from repro.analysis.compare import compare_protocols, default_factories
from repro.analysis.report import render_table
from repro.sim.system import SystemConfig
from repro.workloads.locks import spinlock_trace

N_NODES = 16
ACQUISITIONS = 40


def test_spinlock_contention(benchmark):
    contended = spinlock_trace(
        N_NODES, list(range(8)), ACQUISITIONS, spin_reads=3
    )
    uncontended = spinlock_trace(
        N_NODES, [0], ACQUISITIONS, spin_reads=3
    )

    def sweep():
        return {
            "contended (8 tasks)": compare_protocols(
                contended, SystemConfig(n_nodes=N_NODES)
            ),
            "uncontended (1 task)": compare_protocols(
                uncontended, SystemConfig(n_nodes=N_NODES)
            ),
        }

    comparisons = benchmark.pedantic(sweep, iterations=1, rounds=1)

    contended_costs = comparisons["contended (8 tasks)"].cost_per_reference()
    uncontended_costs = comparisons[
        "uncontended (1 task)"
    ].cost_per_reference()
    # The §5 caveat: contention multiplies the two-mode cost...
    assert contended_costs["two-mode"] > 3 * uncontended_costs["two-mode"]
    # ...but even then it does not collapse to worse than write-once.
    assert contended_costs["two-mode"] <= contended_costs["write-once"] * 1.5

    names = sorted(default_factories())
    rows = []
    for label, comparison in comparisons.items():
        costs = comparison.cost_per_reference()
        rows.append(
            (label,) + tuple(f"{costs[name]:.1f}" for name in names)
        )
    transfers = [
        (
            f"{label} ownership transfers",
            comparison.reports["two-mode"].stats.events.get(
                "ownership_transfers", 0
            ),
        )
        for label, comparison in comparisons.items()
    ]
    save_exhibit(
        "spinlock",
        render_table(
            ("scenario",) + tuple(names),
            rows,
            title=(
                f"Spinlock workload, {ACQUISITIONS} acquisitions "
                f"(bits/reference)"
            ),
        )
        + "\n\n"
        + render_table(("metric", "count"), transfers),
    )
