"""Figure 5: communication cost vs number of destinations, schemes 1 and 2.

Paper setting: N = 1024 caches (m = 10), message size M = 20, scheme 2 in
its worst case.  The paper's observation -- "break-even occurs when n is a
small fraction of N" -- is asserted on the regenerated series.
"""

from conftest import save_exhibit

from repro.analysis.figures import fig5_breakeven_note, fig5_data
from repro.analysis.report import render_series

NETWORK_SIZE = 1024
MESSAGE_BITS = 20


def test_fig5_series(benchmark):
    data = benchmark(fig5_data, NETWORK_SIZE, MESSAGE_BITS)

    scheme1 = dict(data["scheme 1 (eq. 2)"])
    scheme2 = dict(data["scheme 2 worst (eq. 3)"])
    # Scheme 2 pays for the 1024-bit vector at n = 1 ...
    assert scheme2[1] > scheme1[1]
    # ... but wins from a small fraction of N onward (the figure's point).
    crossover = min(n for n in scheme1 if scheme2[n] < scheme1[n])
    assert crossover <= NETWORK_SIZE // 8

    rows = "\n".join(
        f"n={n:5d}  scheme1={scheme1[n]:8d}  scheme2={scheme2[n]:8d}"
        for n in sorted(scheme1)
    )
    chart = render_series(
        data,
        title=(
            f"Figure 5: CC vs n (N={NETWORK_SIZE}, M={MESSAGE_BITS}, "
            f"scheme 2 worst case)"
        ),
        log_x=True,
    )
    note = fig5_breakeven_note(NETWORK_SIZE, MESSAGE_BITS)
    save_exhibit("fig5_scheme_costs", f"{chart}\n\n{rows}\n\n{note}")
