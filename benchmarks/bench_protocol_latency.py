"""Extension exhibit: zero-contention latency per reference, by protocol.

The latency companion to the simulated Figure 8: the same §4 workload at
three write fractions, measured in store-and-forward cycles per reference
(each reference's protocol messages chained serially on an idle fabric).
"""

from conftest import save_exhibit

from repro.analysis.compare import default_factories
from repro.analysis.latency import latency_comparison
from repro.analysis.report import render_table
from repro.sim.system import SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 16
N_SHARERS = 8
WRITE_FRACTIONS = (0.05, 0.5, 0.95)
REFERENCES = 1500


def test_protocol_latency(benchmark):
    def sweep():
        results = {}
        for w in WRITE_FRACTIONS:
            trace = markov_block_trace(
                N_NODES,
                tasks=list(range(N_SHARERS)),
                write_fraction=w,
                n_references=REFERENCES,
                seed=21,
            )
            results[w] = latency_comparison(
                trace.references,
                SystemConfig(n_nodes=N_NODES),
                default_factories(),
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    # Caching pays on latency too: at low w, distributed-write turns
    # nearly all references into zero-cycle hits.
    low = results[0.05]
    assert low["distributed-write"].hit_fraction > 0.9
    assert (
        low["distributed-write"].mean_cycles
        < low["no-cache"].mean_cycles
    )
    # At high w, global read writes locally.
    high = results[0.95]
    assert high["global-read"].mean_cycles < high["no-cache"].mean_cycles

    names = sorted(default_factories())
    rows = []
    for w in WRITE_FRACTIONS:
        rows.append(
            (f"w={w:.2f}",)
            + tuple(
                f"{results[w][name].mean_cycles:.0f}" for name in names
            )
        )
    hit_rows = [
        (f"w={w:.2f} hits",)
        + tuple(
            f"{results[w][name].hit_fraction:.0%}" for name in names
        )
        for w in WRITE_FRACTIONS
    ]
    save_exhibit(
        "protocol_latency",
        render_table(
            ("metric",) + tuple(names),
            rows + hit_rows,
            title=(
                f"Zero-contention cycles per reference "
                f"({N_SHARERS} sharers, N={N_NODES})"
            ),
        ),
    )
