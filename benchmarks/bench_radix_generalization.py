"""Extension exhibit: the §3 generalisation to a x a switches.

One machine size (N = 4096 = 2^12 = 4^6 = 8^4), three switch radices.
Bigger switches mean fewer stages, hence shorter tags and fewer links per
path -- the cost of every scheme falls as the radix grows, which the
exhibit tabulates.  Simulated link bits are asserted equal to the
generalised per-stage formulas at every cell.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.network.message import Message
from repro.network.radix import (
    RadixOmegaNetwork,
    cc1_radix,
    cc2_worst_radix,
    cc3_radix,
    radix_multicast_scheme2,
    radix_multicast_scheme3,
)

N_PORTS = 4096
RADICES = (2, 4, 8)
MESSAGE_BITS = 20
N_DESTS = 64  # a power of every radix considered


def test_radix_generalisation(benchmark):
    def build_rows():
        rows = []
        for radix in RADICES:
            net = RadixOmegaNetwork(N_PORTS, radix)
            stride = N_PORTS // N_DESTS
            spread = [j * stride for j in range(N_DESTS)]
            adjacent = range(N_DESTS)
            s2 = radix_multicast_scheme2(
                net,
                Message(source=3, payload_bits=MESSAGE_BITS),
                spread,
                commit=False,
            )
            s3 = radix_multicast_scheme3(
                net,
                Message(source=3, payload_bits=MESSAGE_BITS),
                adjacent,
                commit=False,
            )
            assert s2.cost == cc2_worst_radix(
                N_DESTS, N_PORTS, radix, MESSAGE_BITS
            )
            assert s3.cost == cc3_radix(
                N_DESTS, N_PORTS, radix, MESSAGE_BITS
            )
            rows.append(
                (
                    f"{radix}x{radix}",
                    net.n_stages,
                    cc1_radix(N_DESTS, N_PORTS, radix, MESSAGE_BITS),
                    s2.cost,
                    s3.cost,
                )
            )
        return rows

    rows = benchmark(build_rows)

    # Fewer stages -> cheaper scheme 1 and scheme 3 (shorter tags/paths).
    scheme1 = [row[2] for row in rows]
    scheme3 = [row[4] for row in rows]
    assert scheme1 == sorted(scheme1, reverse=True)
    assert scheme3 == sorted(scheme3, reverse=True)

    save_exhibit(
        "radix_generalisation",
        render_table(
            ("switch", "stages", "scheme 1", "scheme 2 worst",
             "scheme 3"),
            rows,
            title=(
                f"a x a generalisation: N={N_PORTS}, n={N_DESTS} "
                f"destinations, M={MESSAGE_BITS} (simulated == formula "
                f"at every cell)"
            ),
        ),
    )
