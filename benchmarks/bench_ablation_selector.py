"""Ablation: the §5 break-even registers vs the probing oracle.

The combined scheme (eq. 8) as implemented probes all three schemes per
multicast -- fine for a simulator, impossible for a switch.  §5's hardware
answer is two precompiled break-even registers consulted with a popcount
of the present-flag vector.  This benchmark runs the same
distributed-write workload under the probing multicaster, the register
multicaster, and each pinned scheme, and checks that the O(1) register
decision recovers nearly all of the oracle's savings.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.network.multicast import MulticastScheme
from repro.network.selector import RegisterMulticaster, compile_registers
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 128
N_TASKS = 32  # adjacently placed on ports 0..31
MESSAGE_BITS = 20

TRACE = markov_block_trace(
    N_NODES,
    tasks=list(range(N_TASKS)),
    write_fraction=0.3,
    n_references=2500,
    seed=55,
)


def _run_with(multicaster_factory=None, scheme=None):
    config = SystemConfig(
        n_nodes=N_NODES,
        multicast_scheme=scheme or MulticastScheme.COMBINED,
    )
    system = System(config, multicaster_factory=multicaster_factory)
    protocol = StenstromProtocol(
        system, default_mode=Mode.DISTRIBUTED_WRITE
    )
    return run_trace(
        protocol, TRACE, verify=True, check_invariants_every=500
    )


def test_register_selector_vs_probing(benchmark):
    registers = compile_registers(N_NODES, N_TASKS, MESSAGE_BITS)

    def sweep():
        return {
            "probing oracle (eq. 8)": _run_with(),
            "§5 registers (popcount)": _run_with(
                multicaster_factory=lambda net: RegisterMulticaster(
                    net, registers
                )
            ),
            "pinned scheme 1": _run_with(scheme=MulticastScheme.UNICAST),
            "pinned scheme 2": _run_with(scheme=MulticastScheme.VECTOR),
            "pinned scheme 3": _run_with(
                scheme=MulticastScheme.BROADCAST_TAG
            ),
        }

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    costs = {
        name: report.cost_per_reference
        for name, report in reports.items()
    }
    oracle = costs["probing oracle (eq. 8)"]
    registers_cost = costs["§5 registers (popcount)"]
    # The register decision must be within 15% of the probing oracle and
    # no worse than the best pinned scheme by more than that margin.
    assert registers_cost <= oracle * 1.15

    rows = [
        (name, f"{value:.1f}")
        for name, value in sorted(costs.items(), key=lambda kv: kv[1])
    ]
    rows.append(
        (
            "registers compiled",
            f"scheme2>={registers.scheme2_threshold}, "
            f"scheme3>={registers.scheme3_threshold}",
        )
    )
    save_exhibit(
        "ablation_selector",
        render_table(
            ("multicast decision", "bits/ref"),
            rows,
            title=(
                f"§5 register selector ablation: {N_TASKS} adjacent "
                f"sharers, w=0.3, N={N_NODES}"
            ),
        ),
    )
