"""Extension exhibit: multicast *latency* under the three schemes.

The paper compares traffic (eq. 1); this exhibit runs the same deliveries
through the store-and-forward timing model of :mod:`repro.sim.timing`
(one bit per link per cycle, FIFO links) and reports completion times.
Scheme 1's n unicasts serialise on the source link, so its latency grows
linearly in n while the tree schemes grow only with tree depth and the
shrinking tag -- the latency face of the eq. 2 / eq. 3 / eq. 5 story.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.network.cost import adjacent_placement
from repro.network.message import Message
from repro.network.multicast import (
    multicast_scheme1,
    multicast_scheme2,
    multicast_scheme3,
)
from repro.network.topology import OmegaNetwork
from repro.sim.timing import makespan

NETWORK_SIZE = 256
MESSAGE_BITS = 128  # one cache block on the wire
N_VALUES = (2, 8, 32, 128)


def test_multicast_latency(benchmark):
    def build_rows():
        net = OmegaNetwork(NETWORK_SIZE)
        message = Message(source=200, payload_bits=MESSAGE_BITS)
        rows = []
        for n in N_VALUES:
            dests = adjacent_placement(NETWORK_SIZE, n)
            s1 = makespan(
                [
                    multicast_scheme1(
                        net, message, dests, commit=False
                    ).loads
                ]
            )
            s2 = makespan(
                [
                    multicast_scheme2(
                        net, message, dests, commit=False
                    ).loads
                ]
            )
            s3 = makespan(
                [
                    multicast_scheme3(
                        net, message, dests, commit=False
                    ).loads
                ]
            )
            rows.append((n, s1, s2, s3))
        return rows

    rows = benchmark(build_rows)

    # Scheme 1's latency grows (n more source-link crossings each time);
    # the tree schemes stay within a small factor of a single traversal.
    scheme1 = [row[1] for row in rows]
    assert scheme1 == sorted(scheme1)
    for n, s1, s2, s3 in rows:
        if n >= 8:
            assert s2 < s1
            assert s3 < s1

    save_exhibit(
        "latency",
        render_table(
            ("n", "scheme 1 (cycles)", "scheme 2", "scheme 3"),
            rows,
            title=(
                f"Multicast completion time, store-and-forward model "
                f"(N={NETWORK_SIZE}, M={MESSAGE_BITS} bits, adjacent "
                f"destinations)"
            ),
        ),
    )
