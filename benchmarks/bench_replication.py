"""Extension exhibit: headline results with confidence intervals.

A reproduction should state its uncertainty.  The two headline empirical
comparisons -- two-mode vs no-cache at a read-heavy point, two-mode vs
write-once at the mid-range -- are replicated over independent workload
seeds; the exhibit reports means with 95% Student-t intervals and the
assertions require the intervals not to overlap (the differences are
significant, not seed luck).
"""

from conftest import save_exhibit

from repro.analysis.compare import default_factories
from repro.analysis.replication import replicated_cost
from repro.analysis.report import render_table
from repro.sim.system import SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 16
N_SHARERS = 8
SEEDS = tuple(range(6))
CASES = (
    ("read-heavy (w=0.05)", 0.05),
    ("mid-range (w=0.50)", 0.50),
)
PROTOCOLS = ("two-mode", "no-cache", "write-once")


def _trace_factory(write_fraction):
    return lambda seed: markov_block_trace(
        N_NODES,
        tasks=list(range(N_SHARERS)),
        write_fraction=write_fraction,
        n_references=2000,
        seed=seed,
    )


def test_headline_results_are_significant(benchmark):
    factories = default_factories()
    config = SystemConfig(n_nodes=N_NODES)

    def sweep():
        return {
            (label, name): replicated_cost(
                factories[name],
                _trace_factory(w),
                config,
                SEEDS,
            )
            for label, w in CASES
            for name in PROTOCOLS
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    read_heavy = {
        name: results[("read-heavy (w=0.05)", name)]
        for name in PROTOCOLS
    }
    mid_range = {
        name: results[("mid-range (w=0.50)", name)] for name in PROTOCOLS
    }
    # Significance: the intervals do not overlap.
    assert read_heavy["two-mode"].mean < read_heavy["no-cache"].mean
    assert not read_heavy["two-mode"].overlaps(read_heavy["no-cache"])
    assert mid_range["two-mode"].mean < mid_range["write-once"].mean
    assert not mid_range["two-mode"].overlaps(mid_range["write-once"])

    rows = [
        (label, name, str(results[(label, name)]))
        for label, _ in CASES
        for name in PROTOCOLS
    ]
    save_exhibit(
        "replication",
        render_table(
            ("scenario", "protocol", "bits/ref (95% CI)"),
            rows,
            title=(
                f"Headline results over {len(SEEDS)} workload seeds "
                f"({N_SHARERS} sharers, N={N_NODES})"
            ),
        ),
    )
