"""Extension exhibit: who should set the mode -- compiler or hardware?

§2.1 says the mode is "set by the software"; §5 sketches a hardware
selector.  This exhibit pits the two against each other (and the statics)
on a workload with one read-mostly and one write-heavy block:

* the *compiler* (``repro.analysis.compiler``) profiles the program and
  pins each block's mode up front (zero runtime hardware);
* the *oracle* and *adaptive* selectors measure at run time (§5);
* the statics are the no-selection baselines.
"""

from conftest import save_exhibit

from repro.analysis.compiler import recommend_modes
from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.protocol.modes import (
    AdaptiveModePolicy,
    OracleModePolicy,
    PerBlockModePolicy,
    StaticModePolicy,
)
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 16
TASKS = list(range(8))


def _trace():
    from repro.sim.trace import Trace

    read_mostly = markov_block_trace(
        N_NODES, TASKS, 0.03, 2000, block=0, seed=61
    )
    write_heavy = markov_block_trace(
        N_NODES, TASKS, 0.85, 2000, block=1, seed=62
    )
    return Trace.interleave([read_mostly, write_heavy])


def test_compiler_vs_hardware_mode_selection(benchmark):
    trace = _trace()
    policies = {
        "static DW": StaticModePolicy(Mode.DISTRIBUTED_WRITE),
        "static GR": StaticModePolicy(Mode.GLOBAL_READ),
        "compiler (per-block)": PerBlockModePolicy(
            recommend_modes(trace)
        ),
        "oracle (runtime)": OracleModePolicy(window=64),
        "adaptive (§5 counters)": AdaptiveModePolicy(window=64),
    }

    def sweep():
        reports = {}
        for name, policy in policies.items():
            protocol = StenstromProtocol(
                System(SystemConfig(n_nodes=N_NODES)),
                mode_policy=policy,
            )
            reports[name] = run_trace(
                protocol, trace, verify=True, check_invariants_every=500
            )
        return reports

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    costs = {
        name: report.cost_per_reference
        for name, report in reports.items()
    }
    static_best = min(costs["static DW"], costs["static GR"])
    assert costs["compiler (per-block)"] < static_best
    assert costs["compiler (per-block)"] <= costs["oracle (runtime)"] * 1.1

    rows = [
        (
            name,
            f"{costs[name]:.1f}",
            reports[name].stats.events.get("mode_switches", 0),
        )
        for name in policies
    ]
    save_exhibit(
        "compiler_modes",
        render_table(
            ("mode selection", "bits/ref", "mode switches"),
            rows,
            title=(
                "Compiler vs hardware mode selection (one read-mostly "
                "+ one write-heavy block, 8 sharers)"
            ),
        ),
    )
