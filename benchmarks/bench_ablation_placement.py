"""Ablation: task placement (the §5 adjacency claim).

"Communication cost can be reduced considerably if tasks are allocated on
adjacently placed processors."  The same distributed-write workload runs
with the sharing tasks adjacent (ports 0..n-1) and maximally scattered;
with the combined multicast scheme, the adjacent placement must be
cheaper -- scheme 3 (and scheme 2's best case) only exist for it.
"""

from conftest import save_exhibit

from repro.analysis.report import render_table
from repro.cache.state import Mode
from repro.network.cost import worst_case_placement
from repro.protocol.stenstrom import StenstromProtocol
from repro.sim.engine import run_trace
from repro.sim.system import System, SystemConfig
from repro.workloads.markov import markov_block_trace

N_NODES = 256
N_TASKS = 16
WRITE_FRACTION = 0.4


def _run(tasks):
    trace = markov_block_trace(
        N_NODES,
        list(tasks),
        WRITE_FRACTION,
        n_references=2000,
        writer=tasks[0],
        seed=77,
    )
    protocol = StenstromProtocol(
        System(SystemConfig(n_nodes=N_NODES)),
        default_mode=Mode.DISTRIBUTED_WRITE,
    )
    return run_trace(
        protocol, trace, verify=True, check_invariants_every=500
    )


def test_placement_ablation(benchmark):
    adjacent = tuple(range(N_TASKS))
    scattered = worst_case_placement(N_NODES, N_TASKS)

    def sweep():
        return {
            "adjacent": _run(adjacent),
            "scattered": _run(scattered),
        }

    reports = benchmark.pedantic(sweep, iterations=1, rounds=1)
    adjacent_cost = reports["adjacent"].cost_per_reference
    scattered_cost = reports["scattered"].cost_per_reference
    assert adjacent_cost < scattered_cost

    rows = [
        ("adjacent (ports 0..15)", f"{adjacent_cost:.1f}"),
        ("scattered (stride 16)", f"{scattered_cost:.1f}"),
        ("ratio", f"{scattered_cost / adjacent_cost:.2f}x"),
    ]
    save_exhibit(
        "ablation_placement",
        render_table(
            ("task placement", "bits/ref"),
            rows,
            title=(
                f"Placement ablation: {N_TASKS} tasks sharing one DW "
                f"block, w={WRITE_FRACTION}, N={N_NODES}, combined "
                f"multicast"
            ),
        ),
    )
