"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (see the note at the top of ``pyproject.toml``).  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
